#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "cluster/sim_cluster.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/span.h"
#include "util/common.h"
#include "util/memory_budget.h"
#include "util/oom_report.h"

namespace tg::obs {
namespace {

// Every test starts from a zeroed global registry with instrumentation off;
// tests that need spans/histograms enable them explicitly.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    Registry::Global().Reset();
  }
  void TearDown() override {
    SetEnabled(false);
    Registry::Global().Reset();
  }
};

TEST_F(ObsTest, CounterAddIncrementReset) {
  Counter* c = GetCounter("test.counter");
  EXPECT_EQ(c->value(), 0u);
  c->Add(5);
  c->Increment();
  EXPECT_EQ(c->value(), 6u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
}

TEST_F(ObsTest, GaugeSetAddMax) {
  Gauge* g = GetGauge("test.gauge");
  g->Set(2.5);
  g->Add(1.5);
  EXPECT_DOUBLE_EQ(g->value(), 4.0);
  g->Max(3.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g->value(), 4.0);
  g->Max(7.0);
  EXPECT_DOUBLE_EQ(g->value(), 7.0);
}

TEST_F(ObsTest, RegistryReturnsStablePointers) {
  Counter* a = GetCounter("test.stable");
  Counter* b = GetCounter("test.stable");
  EXPECT_EQ(a, b);
  a->Add(3);
  Registry::Global().Reset();
  // Reset zeroes in place; the cached pointer stays valid and reusable.
  EXPECT_EQ(a->value(), 0u);
  a->Increment();
  EXPECT_EQ(GetCounter("test.stable")->value(), 1u);
}

TEST_F(ObsTest, HistogramBucketMath) {
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(~std::uint64_t{0}), 64);
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(5), 16u);
  // Every bucket's lower bound maps back into that bucket.
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketLowerBound(b)), b);
  }
}

TEST_F(ObsTest, HistogramObserveAndSnapshot) {
  Histogram* h = GetHistogram("test.hist");
  for (std::uint64_t v : {0ULL, 1ULL, 1ULL, 5ULL, 300ULL}) h->Observe(v);
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 307u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 300u);
  ASSERT_EQ(snap.buckets.size(), 10u);  // 300 has bit width 9; trailing trimmed
  EXPECT_EQ(snap.buckets[0], 1u);      // value 0
  EXPECT_EQ(snap.buckets[1], 2u);      // the two 1s
  EXPECT_EQ(snap.buckets[3], 1u);      // 5 in [4, 8)
  EXPECT_EQ(snap.buckets[9], 1u);      // 300 in [256, 512)
  h->Reset();
  EXPECT_EQ(h->count(), 0u);
  EXPECT_TRUE(h->Snapshot().buckets.empty());
}

TEST_F(ObsTest, ConcurrentIncrementsAreLossless) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Counter* c = GetCounter("test.concurrent");
  Histogram* h = GetHistogram("test.concurrent_hist");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(static_cast<std::uint64_t>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, SpanNestingBuildsSlashPaths) {
  SetEnabled(true);
  {
    TG_SPAN("outer");
    {
      TG_SPAN("inner");
    }
    {
      TG_SPAN("inner");
    }
  }
  auto spans = Registry::Global().SpanValues();
  ASSERT_EQ(spans.size(), 2u);
  const SpanStats& outer = spans.at({"outer", -1});
  const SpanStats& inner = spans.at({"outer/inner", -1});
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 2u);
  EXPECT_GE(outer.wall_seconds, inner.wall_seconds);
  EXPECT_GE(inner.wall_seconds, 0.0);
}

TEST_F(ObsTest, SpansRecordNothingWhenDisabled) {
  {
    TG_SPAN("ghost");
  }
  EXPECT_TRUE(Registry::Global().SpanValues().empty());
}

TEST_F(ObsTest, ScopedMachineTagsSpans) {
  SetEnabled(true);
  EXPECT_EQ(CurrentMachine(), -1);
  {
    ScopedMachine tag(3);
    EXPECT_EQ(CurrentMachine(), 3);
    TG_SPAN("work");
  }
  EXPECT_EQ(CurrentMachine(), -1);
  auto spans = Registry::Global().SpanValues();
  ASSERT_EQ(spans.count({"work", 3}), 1u);
  EXPECT_EQ(spans.at({"work", 3}).count, 1u);
}

TEST_F(ObsTest, JsonRoundTrip) {
  SetEnabled(true);
  GetCounter("rt.counter")->Add(12345678901234ULL);
  GetGauge("rt.gauge")->Set(0.125);
  Histogram* h = GetHistogram("rt.hist");
  h->Observe(7);
  h->Observe(1000);
  Registry::Global().RecordSpan("rt/phase", 2, 1.5, 0.75);
  Registry::Global().SetMachineStat(0, "peak_bytes", 4096.0);

  RunReport report = RunReport::Collect(Registry::Global());
  report.meta["scale"] = "20";
  report.meta["quote\"and\\slash"] = "line\nbreak";

  RunReport parsed;
  Status status = RunReport::FromJson(report.ToJson(), &parsed);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(parsed.meta, report.meta);
  EXPECT_EQ(parsed.counters, report.counters);
  EXPECT_EQ(parsed.gauges, report.gauges);
  EXPECT_EQ(parsed.machines, report.machines);
  ASSERT_EQ(parsed.histograms.size(), report.histograms.size());
  const HistogramSnapshot& snap = parsed.histograms.at("rt.hist");
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, 1007u);
  EXPECT_EQ(snap.buckets, report.histograms.at("rt.hist").buckets);
  ASSERT_EQ(parsed.spans.size(), 1u);
  EXPECT_EQ(parsed.spans[0].path, "rt/phase");
  EXPECT_EQ(parsed.spans[0].machine, 2);
  EXPECT_EQ(parsed.spans[0].count, 1u);
  EXPECT_DOUBLE_EQ(parsed.spans[0].wall_seconds, 1.5);
  EXPECT_DOUBLE_EQ(parsed.spans[0].cpu_seconds, 0.75);
}

TEST_F(ObsTest, FromJsonRejectsGarbage) {
  RunReport parsed;
  EXPECT_FALSE(RunReport::FromJson("not json", &parsed).ok());
  EXPECT_FALSE(RunReport::FromJson("{\"counters\": [1,2]}", &parsed).ok());
}

TEST_F(ObsTest, SimClusterShuffleMatchesNetworkModelCharges) {
  SetEnabled(true);
  cluster::SimCluster::Options options;
  options.num_machines = 2;
  options.threads_per_machine = 2;
  cluster::SimCluster sim(options);
  const int n = sim.num_workers();

  // Every worker sends 100 edges to every worker (including itself); only
  // cross-machine payloads hit the simulated wire.
  std::vector<std::vector<std::vector<Edge>>> outbox(n);
  for (int src = 0; src < n; ++src) {
    outbox[src].resize(n);
    for (int dst = 0; dst < n; ++dst) {
      outbox[src][dst].assign(100, Edge{static_cast<VertexId>(src),
                                        static_cast<VertexId>(dst)});
    }
  }
  std::vector<std::vector<Edge>> inbox = sim.Shuffle(std::move(outbox));
  for (int dst = 0; dst < n; ++dst) {
    EXPECT_EQ(inbox[dst].size(), static_cast<std::size_t>(n) * 100);
  }

  // 2 machines x 2 workers: each machine sends 2x2x100 edges across.
  const std::uint64_t expected_bytes = 2ull * 2 * 2 * 100 * sizeof(Edge);
  EXPECT_EQ(sim.shuffled_bytes(), expected_bytes);
  auto counters = Registry::Global().CounterValues();
  EXPECT_EQ(counters.at("cluster.shuffled_bytes"), sim.shuffled_bytes());
  EXPECT_EQ(counters.at("net.transfers"), 1u);
  EXPECT_GT(sim.network_seconds(), 0.0);
  EXPECT_NEAR(Registry::Global().GaugeValues().at("net.simulated_seconds"),
              sim.network_seconds(), 1e-12);

  // Spans recorded under the shuffle path; machine stats fold into the
  // registry's per-machine table.
  EXPECT_EQ(Registry::Global().SpanValues().count({"cluster.shuffle", -1}),
            1u);
  sim.RecordMachineStats();
  auto machines = Registry::Global().MachineStats();
  ASSERT_EQ(machines.size(), 2u);
  EXPECT_GE(machines.at(0).at("peak_bytes"), 0.0);
}

TEST_F(ObsTest, PreregisterCreatesCanonicalKeysAtZero) {
  PreregisterCanonicalMetrics();
  auto counters = Registry::Global().CounterValues();
  auto gauges = Registry::Global().GaugeValues();
  EXPECT_EQ(counters.at("avs.edges_generated"), 0u);
  EXPECT_EQ(counters.at("cluster.shuffled_bytes"), 0u);
  EXPECT_EQ(counters.at("sort.bytes_spilled"), 0u);
  EXPECT_EQ(counters.at("mem.oom_events"), 0u);
  EXPECT_DOUBLE_EQ(gauges.at("net.simulated_seconds"), 0.0);
  EXPECT_DOUBLE_EQ(gauges.at("mem.peak_machine_bytes"), 0.0);
  EXPECT_DOUBLE_EQ(gauges.at("mem.used_bytes"), 0.0);
}

OomReport MakeOomReport() {
  OomReport report;
  report.machine = 2;
  report.tag = "cluster.shuffle_buf";
  report.requested_bytes = 4096;
  report.used_bytes = 60000;
  report.limit_bytes = 61440;
  report.breakdown = {{"cluster.shuffle_buf", 50000, 55000},
                      {"storage.extsort.run", 10000, 12000}};
  report.span_stack = "wesp.generate";
  report.headroom_t = {0.1, 0.2, 0.3};
  report.headroom_pct = {40.0, 12.5, 2.0};
  return report;
}

TEST_F(ObsTest, OomReportRoundTripsThroughRunReportJson) {
  RunReport report = RunReport::Collect(Registry::Global());
  report.oom = MakeOomReport();

  RunReport parsed;
  Status status = RunReport::FromJson(report.ToJson(), &parsed);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_TRUE(parsed.oom.has_value());
  EXPECT_EQ(parsed.oom->machine, 2);
  EXPECT_EQ(parsed.oom->tag, "cluster.shuffle_buf");
  EXPECT_EQ(parsed.oom->requested_bytes, 4096u);
  EXPECT_EQ(parsed.oom->used_bytes, 60000u);
  EXPECT_EQ(parsed.oom->limit_bytes, 61440u);
  EXPECT_EQ(parsed.oom->span_stack, "wesp.generate");
  ASSERT_EQ(parsed.oom->breakdown.size(), 2u);
  EXPECT_EQ(parsed.oom->breakdown[0].tag, "cluster.shuffle_buf");
  EXPECT_EQ(parsed.oom->breakdown[0].used_bytes, 50000u);
  EXPECT_EQ(parsed.oom->breakdown[1].peak_bytes, 12000u);
  ASSERT_EQ(parsed.oom->headroom_pct.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.oom->headroom_pct[1], 12.5);
  EXPECT_DOUBLE_EQ(parsed.oom->headroom_t[2], 0.3);

  // A report without an OOM stays without one through the round trip.
  RunReport clean = RunReport::Collect(Registry::Global());
  clean.oom.reset();
  RunReport clean_parsed;
  clean_parsed.oom = MakeOomReport();  // must be overwritten by FromJson
  ASSERT_TRUE(RunReport::FromJson(clean.ToJson(), &clean_parsed).ok());
  EXPECT_FALSE(clean_parsed.oom.has_value());
}

TEST_F(ObsTest, RecordOomFlowsIntoCollectAndResetClears) {
  EXPECT_FALSE(LastOom().has_value());
  RecordOom(MakeOomReport());
  EXPECT_EQ(GetCounter("mem.oom_events")->value(), 1u);

  RunReport report = RunReport::Collect(Registry::Global());
  ASSERT_TRUE(report.oom.has_value());
  EXPECT_EQ(report.oom->tag, "cluster.shuffle_buf");
  // The human-readable table names the failing machine and tag.
  EXPECT_NE(report.ToTable().find("mem.oom"), std::string::npos);
  EXPECT_NE(report.ToTable().find("machine 2"), std::string::npos);

  Registry::Global().Reset();
  EXPECT_FALSE(LastOom().has_value());
  EXPECT_FALSE(RunReport::Collect(Registry::Global()).oom.has_value());
}

TEST_F(ObsTest, StandaloneOomReportJsonNamesTagAndMachine) {
  std::string json = OomReportToJson(MakeOomReport());
  EXPECT_NE(json.find("\"tag\": \"cluster.shuffle_buf\""), std::string::npos);
  EXPECT_NE(json.find("\"machine\": 2"), std::string::npos);
  EXPECT_NE(json.find("storage.extsort.run"), std::string::npos);
}

TEST_F(ObsTest, PublishMemoryGaugesTracksLiveBudgets) {
  MemoryBudget budget(1000, /*machine=*/5);
  budget.Allocate(250, budget.Tag("test.component"));
  PublishMemoryGauges();
  auto gauges = Registry::Global().GaugeValues();
  EXPECT_DOUBLE_EQ(gauges.at("mem.m5.used_bytes"), 250.0);
  EXPECT_DOUBLE_EQ(gauges.at("mem.m5.headroom_pct"), 75.0);
  EXPECT_GE(gauges.at("mem.used_bytes"), 250.0);
  EXPECT_LE(gauges.at("mem.headroom_pct"), 75.0);
  EXPECT_DOUBLE_EQ(gauges.at("mem.tag.test.component.peak_bytes"), 250.0);
  budget.Release(250, budget.Tag("test.component"));
}

TEST_F(ObsTest, RetiringBudgetFoldsTagPeaksIntoRegistry) {
  PreregisterCanonicalMetrics();  // installs the budget retire hook
  {
    MemoryBudget budget(0, /*machine=*/4);
    budget.Allocate(777, budget.Tag("test.retired"));
    budget.Release(777, budget.Tag("test.retired"));
  }
  auto gauges = Registry::Global().GaugeValues();
  EXPECT_DOUBLE_EQ(gauges.at("mem.tag.test.retired.peak_bytes"), 777.0);
  EXPECT_GE(gauges.at("mem.peak_machine_bytes"), 777.0);
  auto machines = Registry::Global().MachineStats();
  EXPECT_DOUBLE_EQ(machines.at(4).at("peak_bytes"), 777.0);
}

}  // namespace
}  // namespace tg::obs
