#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "analysis/degree_dist.h"
#include "gmark/graph_config.h"
#include "gmark/schema_generator.h"

namespace tg::gmark {
namespace {

TEST(GraphConfigTest, BibliographyIsValid) {
  GraphConfig config = GraphConfig::Bibliography(100000, 1000000);
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_EQ(config.node_types.size(), 4u);
  EXPECT_EQ(config.predicates.size(), 3u);
  EXPECT_EQ(config.schema.size(), 3u);
}

TEST(GraphConfigTest, NodeRangesPartitionTheIdSpace) {
  GraphConfig config = GraphConfig::Bibliography(100000, 1000000);
  auto ranges = config.NodeRanges();
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges[0].begin, 0u);
  EXPECT_EQ(ranges[0].size(), 50000u);  // researcher 50%
  EXPECT_EQ(ranges[1].size(), 30000u);  // paper 30%
  EXPECT_EQ(ranges[2].size(), 10000u);  // journal 10%
  EXPECT_EQ(ranges[3].size(), 10000u);  // conference 10%
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].begin, ranges[i - 1].end);
  }
  EXPECT_EQ(ranges.back().end, 100000u);
}

TEST(GraphConfigTest, EdgesForSchemaFollowsPredicateRatios) {
  GraphConfig config = GraphConfig::Bibliography(100000, 1000000);
  EXPECT_EQ(config.EdgesForSchema(config.schema[0]), 500000u);  // author 50%
  EXPECT_EQ(config.EdgesForSchema(config.schema[1]), 300000u);
  EXPECT_EQ(config.EdgesForSchema(config.schema[2]), 200000u);
}

TEST(GraphConfigTest, ParseRoundTrip) {
  GraphConfig original = GraphConfig::Bibliography(50000, 400000);
  GraphConfig parsed;
  ASSERT_TRUE(GraphConfig::Parse(original.ToString(), &parsed).ok());
  EXPECT_EQ(parsed.total_nodes, original.total_nodes);
  EXPECT_EQ(parsed.total_edges, original.total_edges);
  ASSERT_EQ(parsed.node_types.size(), original.node_types.size());
  ASSERT_EQ(parsed.schema.size(), original.schema.size());
  EXPECT_EQ(parsed.schema[0].out_degree.kind,
            erv::DegreeSpec::Kind::kZipfian);
  EXPECT_NEAR(parsed.schema[0].out_degree.zipf_slope, -1.662, 1e-9);
  EXPECT_EQ(parsed.schema[1].out_degree.kind,
            erv::DegreeSpec::Kind::kUniform);
}

TEST(GraphConfigTest, ParseHandlesCommentsAndBlankLines) {
  const char* text = R"(
# a bibliography-like config
nodes 1000
edges 5000

type a 0.6   # sixty percent
type b 0.4
predicate p 1.0
schema a p b out=gaussian in=gaussian
)";
  GraphConfig config;
  ASSERT_TRUE(GraphConfig::Parse(text, &config).ok());
  EXPECT_EQ(config.total_nodes, 1000u);
  EXPECT_EQ(config.node_types.size(), 2u);
}

TEST(GraphConfigTest, ParseRejectsBadInput) {
  GraphConfig config;
  EXPECT_FALSE(GraphConfig::Parse("bogus keyword", &config).ok());
  EXPECT_FALSE(GraphConfig::Parse("nodes", &config).ok());
  EXPECT_FALSE(GraphConfig::Parse(
                   "nodes 10\nedges 10\ntype a 1.0\npredicate p 1.0\n"
                   "schema a p b out=gaussian in=gaussian",
                   &config)
                   .ok());  // unknown type b
  EXPECT_FALSE(GraphConfig::Parse(
                   "nodes 10\nedges 10\ntype a 0.5\ntype b 0.4\n"
                   "predicate p 1.0\n",
                   &config)
                   .ok());  // ratios sum to 0.9
  EXPECT_FALSE(GraphConfig::Parse(
                   "nodes 10\nedges 10\ntype a 1.0\npredicate p 1.0\n"
                   "schema a p a out=zipfian:1.5 in=gaussian",
                   &config)
                   .ok());  // positive zipf slope
}

TEST(SchemaGeneratorTest, EdgeBudgetSplitAcrossPredicates) {
  GraphConfig config = GraphConfig::Bibliography(20000, 100000);
  RichStats stats = GenerateRichGraph(config, 42, [](const RichEdge&) {});
  ASSERT_EQ(stats.edges_per_predicate.size(), 3u);
  // author ~ 50% (stochastic), publishedIn = #papers (uniform 1:1 capped by
  // type size), heldIn = #papers.
  EXPECT_NEAR(static_cast<double>(stats.edges_per_predicate[0]), 50000.0,
              50000.0 * 0.05);
  EXPECT_EQ(stats.edges_per_predicate[1], 6000u);  // 30% of 20k nodes
  EXPECT_EQ(stats.edges_per_predicate[2], 6000u);
}

TEST(SchemaGeneratorTest, EdgesRespectTypeRanges) {
  GraphConfig config = GraphConfig::Bibliography(10000, 50000);
  auto ranges = config.NodeRanges();
  GenerateRichGraph(config, 42, [&](const RichEdge& e) {
    const SchemaEntry* entry = nullptr;
    for (const SchemaEntry& s : config.schema) {
      if (config.PredicateIndex(s.predicate) ==
          static_cast<int>(e.predicate)) {
        entry = &s;
      }
    }
    ASSERT_NE(entry, nullptr);
    const auto& src_range = ranges[config.NodeTypeIndex(entry->source_type)];
    const auto& dst_range = ranges[config.NodeTypeIndex(entry->target_type)];
    EXPECT_GE(e.src, src_range.begin);
    EXPECT_LT(e.src, src_range.end);
    EXPECT_GE(e.dst, dst_range.begin);
    EXPECT_LT(e.dst, dst_range.end);
  });
}

TEST(SchemaGeneratorTest, NoDuplicateTypedEdges) {
  GraphConfig config = GraphConfig::Bibliography(5000, 25000);
  std::set<RichEdge> seen;
  std::uint64_t count = 0;
  GenerateRichGraph(config, 42, [&](const RichEdge& e) {
    EXPECT_TRUE(seen.insert(e).second);
    ++count;
  });
  EXPECT_EQ(seen.size(), count);
}

TEST(SchemaGeneratorTest, AuthorOutZipfInGaussianShape) {
  // Figure 10: researcher->paper author edges, Zipfian out / Gaussian in.
  GraphConfig config = GraphConfig::Bibliography(60000, 600000);
  auto ranges = config.NodeRanges();
  const auto& researchers = ranges[0];
  const auto& papers = ranges[1];
  std::vector<std::uint32_t> out(researchers.size(), 0);
  std::vector<std::uint32_t> in(papers.size(), 0);
  std::uint64_t author_edges = 0;
  GenerateRichGraph(config, 42, [&](const RichEdge& e) {
    if (e.predicate == 0) {  // author
      ++out[e.src - researchers.begin];
      ++in[e.dst - papers.begin];
      ++author_edges;
    }
  });
  auto in_hist =
      analysis::DegreeHistogram::FromDegrees(in, /*include_zero=*/true);
  // Out side: heavy-tailed, class slope near the configured -1.662.
  EXPECT_NEAR(analysis::PopcountClassSlope(out), -1.662, 0.25);
  // In side: Gaussian — no heavy tail.
  double mu = static_cast<double>(author_edges) /
              static_cast<double>(papers.size());
  EXPECT_NEAR(in_hist.MeanDegree(), mu, 0.05 * mu);
  EXPECT_LT(static_cast<double>(in_hist.MaxDegree()),
            mu + 8 * std::sqrt(mu));
}

TEST(SchemaGeneratorTest, DeterministicGivenSeed) {
  GraphConfig config = GraphConfig::Bibliography(2000, 10000);
  std::vector<RichEdge> run1, run2;
  GenerateRichGraph(config, 7, [&](const RichEdge& e) { run1.push_back(e); });
  GenerateRichGraph(config, 7, [&](const RichEdge& e) { run2.push_back(e); });
  EXPECT_EQ(run1, run2);
}

}  // namespace
}  // namespace tg::gmark
