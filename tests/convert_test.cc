#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/trilliong.h"
#include "format/adj6.h"
#include "format/convert.h"
#include "format/csr6.h"
#include "format/tsv.h"
#include "storage/temp_dir.h"

namespace tg::format {
namespace {

std::vector<Edge> SortedEdgesFromAdj6(const std::string& path) {
  std::vector<Edge> edges;
  Adj6Reader::ForEach(path, [&](VertexId u, const std::vector<VertexId>& adj) {
    for (VertexId v : adj) edges.push_back(Edge{u, v});
  });
  std::sort(edges.begin(), edges.end());
  return edges;
}

TEST(ConvertTest, TsvToAdj6RoundTrip) {
  storage::TempDir dir;
  std::string tsv = dir.File("g.tsv");
  {
    TsvWriter writer(tsv);
    writer.WriteEdge(3, 1);
    writer.WriteEdge(0, 2);
    writer.WriteEdge(3, 7);
    writer.WriteEdge(0, 5);
    writer.WriteEdge(9, 9);
    writer.Finish();
  }
  std::string adj6 = dir.File("g.adj6");
  ConvertOptions options;
  options.temp_dir = dir.path();
  options.sort_buffer_items = 2;  // force spills
  ASSERT_TRUE(TsvToAdj6(tsv, adj6, options).ok());

  std::vector<Edge> edges = SortedEdgesFromAdj6(adj6);
  std::vector<Edge> expected = {{0, 2}, {0, 5}, {3, 1}, {3, 7}, {9, 9}};
  EXPECT_EQ(edges, expected);
}

TEST(ConvertTest, Adj6ToTsvRoundTrip) {
  storage::TempDir dir;
  std::string adj6 = dir.File("g.adj6");
  {
    Adj6Writer writer(adj6);
    std::vector<VertexId> adj = {4, 2};
    writer.ConsumeScope(1, adj.data(), adj.size());
    writer.Finish();
  }
  std::string tsv = dir.File("g.tsv");
  ASSERT_TRUE(Adj6ToTsv(adj6, tsv).ok());
  std::vector<Edge> edges = TsvReader::ReadAll(tsv);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{1, 4}));
  EXPECT_EQ(edges[1], (Edge{1, 2}));
}

TEST(ConvertTest, MergeCsr6ShardsEqualsGeneratedGraph) {
  storage::TempDir dir;
  core::TrillionGConfig config;
  config.scale = 10;
  config.edge_factor = 8;
  config.num_workers = 3;
  std::vector<std::string> shards;
  std::mutex mu;
  core::Generate(config, [&](int w, VertexId lo, VertexId hi)
                             -> std::unique_ptr<core::ScopeSink> {
    std::lock_guard<std::mutex> lock(mu);
    shards.push_back(dir.File("s" + std::to_string(w) + ".csr6"));
    return std::make_unique<Csr6Writer>(shards.back(), lo, hi);
  });

  std::string merged = dir.File("merged.csr6");
  ASSERT_TRUE(MergeCsr6Shards(shards, merged).ok());

  Csr6Reader whole(merged);
  ASSERT_TRUE(whole.status().ok());
  EXPECT_EQ(whole.lo(), 0u);
  EXPECT_EQ(whole.hi(), config.NumVertices());

  std::uint64_t shard_edges = 0;
  for (const std::string& path : shards) {
    Csr6Reader shard(path);
    ASSERT_TRUE(shard.status().ok());
    shard_edges += shard.num_edges();
    for (VertexId u = shard.lo(); u < shard.hi(); ++u) {
      auto a = shard.Neighbors(u);
      auto b = whole.Neighbors(u);
      ASSERT_EQ(a.size(), b.size()) << "u=" << u;
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
  }
  EXPECT_EQ(whole.num_edges(), shard_edges);
}

TEST(ConvertTest, MergeRejectsNonTilingShards) {
  storage::TempDir dir;
  {
    Csr6Writer w0(dir.File("a.csr6"), 0, 4);
    w0.Finish();
    Csr6Writer w1(dir.File("b.csr6"), 5, 8);
    w1.Finish();
  }
  EXPECT_FALSE(MergeCsr6Shards({dir.File("a.csr6"), dir.File("b.csr6")},
                               dir.File("out.csr6"))
                   .ok());
}

TEST(ConvertTest, Adj6ToCsr6SortsAdjacency) {
  storage::TempDir dir;
  std::string adj6 = dir.File("g.adj6");
  {
    Adj6Writer writer(adj6);
    std::vector<VertexId> adj = {9, 3, 6};
    writer.ConsumeScope(2, adj.data(), adj.size());
    writer.Finish();
  }
  std::string csr6 = dir.File("g.csr6");
  ASSERT_TRUE(Adj6ToCsr6(adj6, csr6, 16).ok());
  Csr6Reader reader(csr6);
  ASSERT_TRUE(reader.status().ok());
  auto nbrs = reader.Neighbors(2);
  EXPECT_EQ(std::vector<VertexId>(nbrs.begin(), nbrs.end()),
            (std::vector<VertexId>{3, 6, 9}));
}

TEST(ConvertTest, FullPipelineTsvToCsr6ViaAdj6) {
  // Generate TSV, convert twice, and confirm the edge set is preserved.
  storage::TempDir dir;
  core::TrillionGConfig config;
  config.scale = 9;
  config.edge_factor = 8;
  std::string tsv = dir.File("g.tsv");
  {
    TsvWriter sink(tsv);
    core::GenerateToSink(config, &sink);
    sink.Finish();
  }
  std::string adj6 = dir.File("g.adj6");
  ConvertOptions options;
  options.temp_dir = dir.path();
  ASSERT_TRUE(TsvToAdj6(tsv, adj6, options).ok());
  std::string csr6 = dir.File("g.csr6");
  ASSERT_TRUE(Adj6ToCsr6(adj6, csr6, config.NumVertices()).ok());

  std::vector<Edge> original = TsvReader::ReadAll(tsv);
  std::sort(original.begin(), original.end());
  Csr6Reader reader(csr6);
  ASSERT_TRUE(reader.status().ok());
  std::vector<Edge> converted;
  for (VertexId u = 0; u < config.NumVertices(); ++u) {
    for (VertexId v : reader.Neighbors(u)) converted.push_back(Edge{u, v});
  }
  std::sort(converted.begin(), converted.end());
  EXPECT_EQ(original, converted);
}

}  // namespace
}  // namespace tg::format
