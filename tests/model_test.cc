#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "model/edge_probability.h"
#include "model/noise.h"
#include "model/seed_matrix.h"
#include "rng/random.h"

namespace tg::model {
namespace {

TEST(SeedMatrixTest, Graph500Parameters) {
  SeedMatrix k = SeedMatrix::Graph500();
  EXPECT_DOUBLE_EQ(k.a(), 0.57);
  EXPECT_DOUBLE_EQ(k.b(), 0.19);
  EXPECT_DOUBLE_EQ(k.c(), 0.19);
  EXPECT_DOUBLE_EQ(k.d(), 0.05);
}

TEST(SeedMatrixTest, RowAndColSums) {
  SeedMatrix k(0.5, 0.2, 0.2, 0.1);
  EXPECT_DOUBLE_EQ(k.RowSum(0), 0.7);
  EXPECT_DOUBLE_EQ(k.RowSum(1), 0.3);
  EXPECT_DOUBLE_EQ(k.ColSum(0), 0.7);
  EXPECT_DOUBLE_EQ(k.ColSum(1), 0.3);
}

TEST(SeedMatrixTest, EntryIndexing) {
  SeedMatrix k(0.4, 0.3, 0.2, 0.1);
  EXPECT_DOUBLE_EQ(k.Entry(0, 0), 0.4);
  EXPECT_DOUBLE_EQ(k.Entry(0, 1), 0.3);
  EXPECT_DOUBLE_EQ(k.Entry(1, 0), 0.2);
  EXPECT_DOUBLE_EQ(k.Entry(1, 1), 0.1);
}

TEST(SeedMatrixTest, SigmaMatchesLemma3Definition) {
  SeedMatrix k(0.5, 0.2, 0.2, 0.1);
  EXPECT_DOUBLE_EQ(k.Sigma(0), 0.2 / 0.5);
  EXPECT_DOUBLE_EQ(k.Sigma(1), 0.1 / 0.2);
}

TEST(SeedMatrixTest, GraphFiveHundredZipfSlope) {
  // Section 6.1: the Graph500 parameters match Zipfian slope -1.662.
  SeedMatrix k = SeedMatrix::Graph500();
  EXPECT_NEAR(k.TheoreticalOutSlope(), -1.662, 0.001);
  // The matrix is symmetric so in-slope equals out-slope.
  EXPECT_NEAR(k.TheoreticalInSlope(), -1.662, 0.001);
}

TEST(SeedMatrixTest, FromZipfOutSlopeRoundTrips) {
  for (double slope : {-0.5, -1.0, -1.662, -2.5}) {
    SeedMatrix k = SeedMatrix::FromZipfOutSlope(slope);
    EXPECT_NEAR(k.TheoreticalOutSlope(), slope, 1e-12);
  }
}

TEST(SeedMatrixTest, TransposeSwapsOffDiagonal) {
  SeedMatrix k(0.5, 0.3, 0.15, 0.05);
  SeedMatrix t = k.Transposed();
  EXPECT_DOUBLE_EQ(t.b(), 0.15);
  EXPECT_DOUBLE_EQ(t.c(), 0.3);
  EXPECT_DOUBLE_EQ(t.TheoreticalOutSlope(), k.TheoreticalInSlope());
}

TEST(SeedMatrixTest, ExpectedOneBitFraction) {
  // Exact destination-bit marginal is b + d (see header comment; the paper's
  // Lemma 5 numeric value 1/4.917 is inconsistent with its own equation).
  SeedMatrix k = SeedMatrix::Graph500();
  EXPECT_NEAR(k.ExpectedOneBitFraction(), 0.24, 1e-12);
  // Uniform parameters: every destination bit is 1 with probability 1/2.
  EXPECT_NEAR(SeedMatrix::ErdosRenyi().ExpectedOneBitFraction(), 0.5, 1e-12);
}

TEST(SeedMatrixDeathTest, RejectsInvalidParameters) {
  EXPECT_DEATH(SeedMatrix(0.5, 0.5, 0.5, 0.5), "sum to 1");
  EXPECT_DEATH(SeedMatrix(1.2, -0.2, 0.0, 0.0), "non-negative");
}

class EdgeProbabilityTest : public ::testing::Test {
 protected:
  static constexpr int kScale = 4;  // |V| = 16: brute force is cheap
  SeedMatrix seed_ = SeedMatrix(0.5, 0.2, 0.2, 0.1);
  EdgeProbability prob_{seed_, kScale};
};

TEST_F(EdgeProbabilityTest, CellProbabilitiesSumToOne) {
  double total = 0;
  for (VertexId u = 0; u < 16; ++u) {
    for (VertexId v = 0; v < 16; ++v) {
      total += prob_.CellProbability(u, v);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_F(EdgeProbabilityTest, CellMatchesExplicitKroneckerProduct) {
  // Build K^{(x)4} explicitly and compare every cell.
  std::vector<double> k = {0.5, 0.2, 0.2, 0.1};
  std::vector<double> full = {1.0};
  std::size_t dim = 1;
  for (int level = 0; level < kScale; ++level) {
    std::vector<double> next(dim * 2 * dim * 2);
    for (std::size_t r = 0; r < dim; ++r) {
      for (std::size_t c = 0; c < dim; ++c) {
        for (int i = 0; i < 2; ++i) {
          for (int j = 0; j < 2; ++j) {
            next[(r * 2 + i) * dim * 2 + (c * 2 + j)] =
                full[r * dim + c] * k[i * 2 + j];
          }
        }
      }
    }
    full = std::move(next);
    dim *= 2;
  }
  for (VertexId u = 0; u < 16; ++u) {
    for (VertexId v = 0; v < 16; ++v) {
      EXPECT_NEAR(prob_.CellProbability(u, v), full[u * 16 + v], 1e-15)
          << "cell (" << u << ", " << v << ")";
    }
  }
}

TEST_F(EdgeProbabilityTest, RowProbabilityIsRowSumOfCells) {
  for (VertexId u = 0; u < 16; ++u) {
    double row = 0;
    for (VertexId v = 0; v < 16; ++v) row += prob_.CellProbability(u, v);
    EXPECT_NEAR(prob_.RowProbability(u), row, 1e-12) << "row " << u;
  }
}

TEST_F(EdgeProbabilityTest, ColProbabilityIsColSumOfCells) {
  for (VertexId v = 0; v < 16; ++v) {
    double col = 0;
    for (VertexId u = 0; u < 16; ++u) col += prob_.CellProbability(u, v);
    EXPECT_NEAR(prob_.ColProbability(v), col, 1e-12) << "col " << v;
  }
}

TEST_F(EdgeProbabilityTest, CumulativeRowMatchesBruteForcePrefixSum) {
  double cum = 0;
  for (VertexId u = 0; u <= 16; ++u) {
    EXPECT_NEAR(prob_.CumulativeRowProbability(u), cum, 1e-12) << "u=" << u;
    if (u < 16) cum += prob_.RowProbability(u);
  }
  EXPECT_NEAR(prob_.CumulativeRowProbability(16), 1.0, 1e-12);
}

TEST_F(EdgeProbabilityTest, ExpectedOutDegreeScalesWithEdges) {
  EXPECT_NEAR(prob_.ExpectedOutDegree(0, 1000),
              1000 * std::pow(0.7, kScale), 1e-9);
}

TEST_F(EdgeProbabilityTest, MaxRowProbabilityIsMaxOverRows) {
  double max_row = 0;
  for (VertexId u = 0; u < 16; ++u) {
    max_row = std::max(max_row, prob_.RowProbability(u));
  }
  EXPECT_NEAR(prob_.MaxRowProbability(), max_row, 1e-15);
}

TEST(EdgeProbabilityLargeScaleTest, NoOverflowAtScale40) {
  EdgeProbability prob(SeedMatrix::Graph500(), 40);
  VertexId u = (VertexId{1} << 40) - 1;  // all-ones row: smallest marginal
  double p = prob.RowProbability(u);
  EXPECT_GT(p, 0.0);
  EXPECT_NEAR(p, std::pow(0.24, 40), std::pow(0.24, 40) * 1e-9);
  EXPECT_NEAR(prob.CumulativeRowProbability(prob.num_vertices()), 1.0, 1e-9);
}

TEST(NoiseVectorTest, NoiseFreeEqualsBaseEverywhere) {
  SeedMatrix base = SeedMatrix::Graph500();
  NoiseVector nv(base, 10);
  EXPECT_TRUE(nv.IsNoiseFree());
  for (int level = 0; level < 10; ++level) {
    for (int r = 0; r < 2; ++r) {
      for (int c = 0; c < 2; ++c) {
        EXPECT_DOUBLE_EQ(nv.Entry(level, r, c), base.Entry(r, c));
      }
      EXPECT_DOUBLE_EQ(nv.RowSum(level, r), base.RowSum(r));
    }
  }
}

TEST(NoiseVectorTest, NoisyMatricesPreserveTotalMassPerLevel) {
  SeedMatrix base = SeedMatrix::Graph500();
  rng::Rng rng(5);
  NoiseVector nv(base, 20, 0.1, &rng);
  EXPECT_FALSE(nv.IsNoiseFree());
  for (int level = 0; level < 20; ++level) {
    double total = 0;
    for (int r = 0; r < 2; ++r) {
      for (int c = 0; c < 2; ++c) total += nv.Entry(level, r, c);
    }
    // Definition 3 preserves the sum: a+d shrink exactly offsets b,c growth.
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_NEAR(nv.RowSum(level, 0) + nv.RowSum(level, 1), 1.0, 1e-12);
  }
}

TEST(NoiseVectorTest, NoiseStaysWithinBound) {
  SeedMatrix base = SeedMatrix::Graph500();
  rng::Rng rng(6);
  double bound = std::min((base.a() + base.d()) / 2.0, base.b());
  NoiseVector nv(base, 30, 10.0 /* clamped */, &rng);
  for (int level = 0; level < 30; ++level) {
    EXPECT_LE(std::abs(nv.mu(level)), bound + 1e-12);
    for (int r = 0; r < 2; ++r) {
      for (int c = 0; c < 2; ++c) {
        EXPECT_GE(nv.Entry(level, r, c), 0.0);
      }
    }
  }
}

TEST(NoiseVectorTest, MatchesDefinition3Formula) {
  SeedMatrix base(0.5, 0.2, 0.2, 0.1);
  rng::Rng rng(7);
  NoiseVector nv(base, 8, 0.05, &rng);
  for (int level = 0; level < 8; ++level) {
    double mu = nv.mu(level);
    double shrink = 1.0 - 2.0 * mu / (base.a() + base.d());
    EXPECT_NEAR(nv.Entry(level, 0, 0), base.a() * shrink, 1e-15);
    EXPECT_NEAR(nv.Entry(level, 0, 1), base.b() + mu, 1e-15);
    EXPECT_NEAR(nv.Entry(level, 1, 0), base.c() + mu, 1e-15);
    EXPECT_NEAR(nv.Entry(level, 1, 1), base.d() * shrink, 1e-15);
  }
}

TEST(NoiseVectorTest, BitIndexingIsMsbFirstLevels) {
  SeedMatrix base = SeedMatrix::Graph500();
  rng::Rng rng(8);
  NoiseVector nv(base, 12, 0.1, &rng);
  for (int bit = 0; bit < 12; ++bit) {
    EXPECT_DOUBLE_EQ(nv.EntryAtBit(bit, 0, 1), nv.Entry(11 - bit, 0, 1));
    EXPECT_DOUBLE_EQ(nv.RowSumAtBit(bit, 1), nv.RowSum(11 - bit, 1));
  }
}

}  // namespace
}  // namespace tg::model
