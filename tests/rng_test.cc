#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "rng/alias_table.h"
#include "rng/lane_rng.h"
#include "rng/random.h"

namespace tg::rng {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Pcg64Test, DeterministicGivenSeedAndStream) {
  Pcg64 a(42, 7), b(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Pcg64Test, StreamsAreIndependent) {
  Pcg64 a(42, 0), b(42, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 100000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanAndVariance) {
  Rng rng(5);
  const int n = 1 << 20;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextDouble();
    sum += x;
    sumsq += x * x;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.002);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(RngTest, NextBoundedIsInRangeAndRoughlyUniform) {
  Rng rng(17);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    std::uint64_t x = rng.NextBounded(bound);
    ASSERT_LT(x, bound);
    ++counts[x];
  }
  // Chi-square with 9 dof; 99.9% critical value ~27.9.
  double chi2 = 0;
  double expected = static_cast<double>(n) / bound;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 27.9);
}

TEST(RngTest, NextBoundedHandlesNonPowerOfTwoBounds) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 3ULL, 7ULL, 1000003ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 1 << 20;
  double sum = 0, sumsq = 0, sumcube = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sumsq += x * x;
    sumcube += x * x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sumsq / n, 1.0, 0.01);
  EXPECT_NEAR(sumcube / n, 0.0, 0.05);  // symmetry
}

TEST(RngTest, GaussianTailProbability) {
  Rng rng(13);
  const int n = 1 << 20;
  int beyond2 = 0;
  for (int i = 0; i < n; ++i) {
    if (std::abs(rng.NextGaussian()) > 2.0) ++beyond2;
  }
  // P(|Z| > 2) ~ 4.55%.
  EXPECT_NEAR(static_cast<double>(beyond2) / n, 0.0455, 0.004);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng root(42);
  Rng a = root.Fork(0);
  Rng b = root.Fork(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, ForkIsDeterministicAndStable) {
  Rng root(42);
  Rng a1 = root.Fork(123);
  Rng a2 = root.Fork(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a1.NextUint64(), a2.NextUint64());
}

TEST(RngTest, ForkIndependentOfRootConsumption) {
  // Forking must not depend on how much the root has been consumed, so that
  // per-scope streams are stable regardless of worker scheduling.
  Rng root1(42);
  Rng root2(42);
  root2.NextUint64();
  root2.NextUint64();
  Rng f1 = root1.Fork(9);
  Rng f2 = root2.Fork(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f1.NextUint64(), f2.NextUint64());
}

TEST(RngTest, DoubleRangeOverload) {
  Rng rng(21);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble(2.5, 7.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(AliasTableTest, MatchesWeightsByChiSquare) {
  std::vector<double> weights = {1, 4, 2, 0.5, 2.5};
  AliasTable table(weights);
  Rng rng(31);
  const int n = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < n; ++i) ++counts[table.Sample(&rng)];
  double total = 10.0;
  double chi2 = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    double expected = n * weights[i] / total;
    chi2 += (counts[i] - expected) * (counts[i] - expected) / expected;
  }
  // 4 dof, 99.9% critical ~18.5.
  EXPECT_LT(chi2, 18.5);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table({0.0, 1.0, 0.0, 3.0});
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    std::size_t s = table.Sample(&rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTableTest, SingleEntry) {
  AliasTable table({42.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(&rng), 0u);
}

TEST(AliasTableDeathTest, RejectsInvalidWeights) {
  EXPECT_DEATH(AliasTable({-1.0, 2.0}), "negative weight");
  EXPECT_DEATH(AliasTable({0.0, 0.0}), "sum to zero");
}

TEST(MixSeedsTest, SensitiveToBothInputs) {
  std::set<std::uint64_t> values;
  for (std::uint64_t a = 0; a < 10; ++a) {
    for (std::uint64_t b = 0; b < 10; ++b) {
      values.insert(MixSeeds(a, b));
    }
  }
  EXPECT_EQ(values.size(), 100u);
}

// --- LaneRng: the batched counter-form generator of the SIMD edge kernel.
// The determinism contract (docs/PERFORMANCE.md) is that every draw is a
// pure function of (seed, counter): the scalar reference, the unrolled
// portable fill, and the AVX2 fill must agree bit for bit.

TEST(LaneRngTest, MatchesSplitMix64Reference) {
  // Counter form == the sequential SplitMix64 stream, value for value.
  SplitMix64 reference(987654321);
  LaneRng lane(987654321);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(lane.Next(), reference.Next());
}

TEST(LaneRngTest, FillRawMatchesScalarNextAtAnyLength) {
  for (std::size_t n : {0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 1000}) {
    LaneRng scalar(42), batched(42);
    std::vector<std::uint64_t> expected(n), got(n);
    for (std::size_t i = 0; i < n; ++i) expected[i] = scalar.Next();
    batched.FillRaw(got.data(), n);
    EXPECT_EQ(got, expected) << "n=" << n;
    // Both generators must land on the same state afterwards.
    EXPECT_EQ(batched.Next(), scalar.Next()) << "n=" << n;
  }
}

TEST(LaneRngTest, FillUnitMatchesScalarConversionBitExactly) {
  LaneRng scalar(7), batched(7);
  std::vector<double> expected(257), got(257);
  for (double& x : expected) x = scalar.NextUnit();
  batched.FillUnit(got.data(), got.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Bitwise comparison, not EXPECT_DOUBLE_EQ: the contract is identity.
    EXPECT_EQ(got[i], expected[i]) << i;
    EXPECT_GE(got[i], 0.0);
    EXPECT_LT(got[i], 1.0);
  }
}

TEST(LaneRngTest, PortableAndActiveFillsAreBitIdentical) {
  // In an AVX2 build this pins SIMD == portable; in a portable build it
  // degenerates to portable == portable and still guards the state math.
  LaneRng a(123), b(123);
  std::vector<std::uint64_t> simd(301), portable(301);
  a.FillRaw(simd.data(), simd.size());
  b.FillRawPortable(portable.data(), portable.size());
  EXPECT_EQ(simd, portable);

  LaneRng c(321), d(321);
  std::vector<double> simd_unit(301), portable_unit(301);
  c.FillUnit(simd_unit.data(), simd_unit.size());
  d.FillUnitPortable(portable_unit.data(), portable_unit.size());
  for (std::size_t i = 0; i < simd_unit.size(); ++i) {
    EXPECT_EQ(simd_unit[i], portable_unit[i]) << i;
  }
}

TEST(LaneRngTest, ForcePortableSwitchKeepsStream) {
  std::vector<std::uint64_t> on(128), off(128);
  {
    LaneRng lane(55);
    lane.FillRaw(on.data(), on.size());
  }
  SetLaneForcePortable(true);
  {
    LaneRng lane(55);
    lane.FillRaw(off.data(), off.size());
  }
  SetLaneForcePortable(false);
  EXPECT_EQ(on, off);
}

TEST(LaneRngTest, InterleavedScalarAndBatchDrawsShareOneCounter) {
  // Mixing Next()/NextGaussian() header draws with Fill* blocks must
  // consume the same single stream as all-scalar draws — this is what lets
  // the scope-size draw precede the batched deviate blocks.
  LaneRng reference(99), mixed(99);
  std::vector<std::uint64_t> expected(40), got(40);
  for (auto& x : expected) x = reference.Next();
  got[0] = mixed.Next();
  mixed.FillRaw(got.data() + 1, 17);
  got[18] = mixed.Next();
  mixed.FillRaw(got.data() + 19, 21);
  EXPECT_EQ(got, expected);
}

TEST(LaneRngTest, GaussianMomentsAreSane) {
  LaneRng lane(2024);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    double g = lane.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(PackedAliasTableTest, FrequenciesMatchWeights) {
  const std::vector<double> weights = {1.0, 3.0, 0.0, 4.0};
  PackedAliasTable table(weights);
  LaneRng lane(31337);
  const int n = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < n; ++i) ++counts[table.Sample(lane.Next())];
  EXPECT_EQ(counts[2], 0);  // zero weight is never drawn
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = n * weights[i] / 8.0;
    EXPECT_NEAR(counts[i], expected, 5 * std::sqrt(expected + 1.0)) << i;
  }
}

TEST(PackedAliasTableTest, SingleOutcome) {
  PackedAliasTable table(std::vector<double>{2.5});
  EXPECT_EQ(table.Sample(0), 0u);
  EXPECT_EQ(table.Sample(~std::uint64_t{0}), 0u);
}

TEST(PackedAliasTableDeathTest, RejectsNonPowerOfTwo) {
  EXPECT_DEATH(PackedAliasTable(std::vector<double>{1.0, 1.0, 1.0}),
               "power of two");
}

}  // namespace
}  // namespace tg::rng
