#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "rng/alias_table.h"
#include "rng/random.h"

namespace tg::rng {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Pcg64Test, DeterministicGivenSeedAndStream) {
  Pcg64 a(42, 7), b(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Pcg64Test, StreamsAreIndependent) {
  Pcg64 a(42, 0), b(42, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 100000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanAndVariance) {
  Rng rng(5);
  const int n = 1 << 20;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextDouble();
    sum += x;
    sumsq += x * x;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.002);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(RngTest, NextBoundedIsInRangeAndRoughlyUniform) {
  Rng rng(17);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    std::uint64_t x = rng.NextBounded(bound);
    ASSERT_LT(x, bound);
    ++counts[x];
  }
  // Chi-square with 9 dof; 99.9% critical value ~27.9.
  double chi2 = 0;
  double expected = static_cast<double>(n) / bound;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 27.9);
}

TEST(RngTest, NextBoundedHandlesNonPowerOfTwoBounds) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 3ULL, 7ULL, 1000003ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 1 << 20;
  double sum = 0, sumsq = 0, sumcube = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sumsq += x * x;
    sumcube += x * x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sumsq / n, 1.0, 0.01);
  EXPECT_NEAR(sumcube / n, 0.0, 0.05);  // symmetry
}

TEST(RngTest, GaussianTailProbability) {
  Rng rng(13);
  const int n = 1 << 20;
  int beyond2 = 0;
  for (int i = 0; i < n; ++i) {
    if (std::abs(rng.NextGaussian()) > 2.0) ++beyond2;
  }
  // P(|Z| > 2) ~ 4.55%.
  EXPECT_NEAR(static_cast<double>(beyond2) / n, 0.0455, 0.004);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng root(42);
  Rng a = root.Fork(0);
  Rng b = root.Fork(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, ForkIsDeterministicAndStable) {
  Rng root(42);
  Rng a1 = root.Fork(123);
  Rng a2 = root.Fork(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a1.NextUint64(), a2.NextUint64());
}

TEST(RngTest, ForkIndependentOfRootConsumption) {
  // Forking must not depend on how much the root has been consumed, so that
  // per-scope streams are stable regardless of worker scheduling.
  Rng root1(42);
  Rng root2(42);
  root2.NextUint64();
  root2.NextUint64();
  Rng f1 = root1.Fork(9);
  Rng f2 = root2.Fork(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f1.NextUint64(), f2.NextUint64());
}

TEST(RngTest, DoubleRangeOverload) {
  Rng rng(21);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble(2.5, 7.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(AliasTableTest, MatchesWeightsByChiSquare) {
  std::vector<double> weights = {1, 4, 2, 0.5, 2.5};
  AliasTable table(weights);
  Rng rng(31);
  const int n = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < n; ++i) ++counts[table.Sample(&rng)];
  double total = 10.0;
  double chi2 = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    double expected = n * weights[i] / total;
    chi2 += (counts[i] - expected) * (counts[i] - expected) / expected;
  }
  // 4 dof, 99.9% critical ~18.5.
  EXPECT_LT(chi2, 18.5);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table({0.0, 1.0, 0.0, 3.0});
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    std::size_t s = table.Sample(&rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTableTest, SingleEntry) {
  AliasTable table({42.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(&rng), 0u);
}

TEST(AliasTableDeathTest, RejectsInvalidWeights) {
  EXPECT_DEATH(AliasTable({-1.0, 2.0}), "negative weight");
  EXPECT_DEATH(AliasTable({0.0, 0.0}), "sum to zero");
}

TEST(MixSeedsTest, SensitiveToBothInputs) {
  std::set<std::uint64_t> values;
  for (std::uint64_t a = 0; a < 10; ++a) {
    for (std::uint64_t b = 0; b < 10; ++b) {
      values.insert(MixSeeds(a, b));
    }
  }
  EXPECT_EQ(values.size(), 100u);
}

}  // namespace
}  // namespace tg::rng
