// Tests for the live observability plane: net/http_server.h (bounded
// request parsing, pipelining, streaming broadcast), obs/serve/prometheus.h
// (text exposition golden file, label lifting/escaping, histogram buckets),
// and obs/serve/admin_server.h (endpoint contracts, SSE fan-out, and — the
// TSan target — concurrent scrapes during an active multi-worker run).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/scope_sink.h"
#include "core/trilliong.h"
#include "net/http_server.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/sampler.h"
#include "obs/serve/admin_server.h"
#include "obs/serve/prometheus.h"

namespace tg {
namespace {

// ---------------------------------------------------------------------------
// A tiny blocking test client.

/// Connects to 127.0.0.1:port with a receive timeout; -1 on failure.
int ConnectTo(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval timeout{/*tv_sec=*/5, /*tv_usec=*/0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends `raw` and reads until the server closes (or the timeout trips).
std::string Transact(int port, const std::string& raw) {
  int fd = ConnectTo(port);
  if (fd < 0) return "";
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::write(fd, raw.data() + sent, raw.size() - sent);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

/// One-liner GET with Connection: close.
std::string Get(int port, const std::string& path) {
  return Transact(port, "GET " + path +
                            " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
}

/// Body of a Content-Length response (empty when malformed).
std::string BodyOf(const std::string& reply) {
  const std::size_t split = reply.find("\r\n\r\n");
  return split == std::string::npos ? "" : reply.substr(split + 4);
}

net::HttpServer::Options EphemeralOptions() {
  net::HttpServer::Options options;
  options.port = 0;
  return options;
}

/// Echo-the-path handler used by the protocol tests.
net::HttpResponse EchoHandler(const net::HttpRequest& request) {
  net::HttpResponse response;
  response.body = "path=" + request.path + "\n";
  return response;
}

// ---------------------------------------------------------------------------
// HTTP protocol layer.

TEST(HttpServerTest, BindsEphemeralPortAndStops) {
  net::HttpServer server;
  ASSERT_TRUE(server.Start(EphemeralOptions(), EchoHandler).ok());
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  const std::string reply = Get(server.port(), "/x");
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(reply), "path=/x\n");
  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), -1);
  // Stop is idempotent.
  server.Stop();
}

TEST(HttpServerTest, MalformedRequestLineGets400) {
  net::HttpServer server;
  ASSERT_TRUE(server.Start(EphemeralOptions(), EchoHandler).ok());
  EXPECT_NE(Transact(server.port(), "GARBAGE\r\n\r\n")
                .find("HTTP/1.1 400 Bad Request"),
            std::string::npos);
  // Missing HTTP version token.
  EXPECT_NE(Transact(server.port(), "GET /x\r\n\r\n")
                .find("HTTP/1.1 400 Bad Request"),
            std::string::npos);
  // Header line without a colon.
  EXPECT_NE(
      Transact(server.port(), "GET / HTTP/1.1\r\nbad header line\r\n\r\n")
          .find("HTTP/1.1 400 Bad Request"),
      std::string::npos);
}

TEST(HttpServerTest, OversizedRequestGets431) {
  net::HttpServer server;
  net::HttpServer::Options options = EphemeralOptions();
  options.max_request_bytes = 512;
  ASSERT_TRUE(server.Start(options, EchoHandler).ok());
  // Never completes the header block, grows past the cap.
  const std::string flood =
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(2048, 'a');
  EXPECT_NE(Transact(server.port(), flood)
                .find("HTTP/1.1 431 Request Header Fields Too Large"),
            std::string::npos);
}

TEST(HttpServerTest, RequestBodyGets413AndPostGets405) {
  net::HttpServer server;
  ASSERT_TRUE(server.Start(EphemeralOptions(), EchoHandler).ok());
  EXPECT_NE(
      Transact(server.port(),
               "POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
          .find("HTTP/1.1 413 Payload Too Large"),
      std::string::npos);
  EXPECT_NE(Transact(server.port(), "POST / HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 405 Method Not Allowed"),
            std::string::npos);
}

TEST(HttpServerTest, PipelinedRequestsAnswerInOrder) {
  net::HttpServer server;
  ASSERT_TRUE(server.Start(EphemeralOptions(), EchoHandler).ok());
  // Two requests in one write; the second closes the connection so the
  // client can read-to-EOF.
  const std::string reply = Transact(
      server.port(),
      "GET /first HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /second HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  const std::size_t first = reply.find("path=/first");
  const std::size_t second = reply.find("path=/second");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  // Both served over one connection: two status lines in one byte stream.
  EXPECT_NE(reply.rfind("HTTP/1.1 200 OK"), reply.find("HTTP/1.1 200 OK"));
}

TEST(HttpServerTest, HeadAdvertisesLengthWithoutBody) {
  net::HttpServer server;
  ASSERT_TRUE(server.Start(EphemeralOptions(), EchoHandler).ok());
  const std::string reply = Transact(
      server.port(), "HEAD /abc HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(reply.find("Content-Length: 10"), std::string::npos)
      << reply;  // "path=/abc\n" is 10 bytes
  EXPECT_EQ(BodyOf(reply), "");
}

TEST(HttpServerTest, BroadcastReachesStreamSubscribers) {
  net::HttpServer server;
  ASSERT_TRUE(server
                  .Start(EphemeralOptions(),
                         [](const net::HttpRequest&) {
                           net::HttpResponse response;
                           response.content_type = "text/event-stream";
                           response.stream_channel = "chan";
                           response.body = "event: hello\n\n";
                           return response;
                         })
                  .ok());
  int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  const std::string req = "GET /events HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_EQ(::write(fd, req.data(), req.size()),
            static_cast<ssize_t>(req.size()));

  // Wait for the subscription to register, then broadcast twice.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server.SubscriberCount("chan") == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.SubscriberCount("chan"), 1u);
  server.Broadcast("chan", "data: one\n\n");
  server.Broadcast("chan", "data: two\n\n");

  std::string got;
  char buf[1024];
  while (got.find("data: two") == std::string::npos &&
         std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    got.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(got.find("event: hello"), std::string::npos) << got;
  EXPECT_NE(got.find("data: one"), std::string::npos) << got;
  EXPECT_NE(got.find("data: two"), std::string::npos) << got;
  EXPECT_NE(got.find("Transfer-Encoding: chunked"), std::string::npos) << got;
}

TEST(HttpServerTest, SubscribedStreamIgnoresPipelinedRequests) {
  net::HttpServer server;
  ASSERT_TRUE(server
                  .Start(EphemeralOptions(),
                         [](const net::HttpRequest&) {
                           net::HttpResponse response;
                           response.content_type = "text/event-stream";
                           response.stream_channel = "chan";
                           response.body = "event: hello\n\n";
                           return response;
                         })
                  .ok());
  int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  const std::string req = "GET /events HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_EQ(::write(fd, req.data(), req.size()),
            static_cast<ssize_t>(req.size()));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server.SubscriberCount("chan") == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.SubscriberCount("chan"), 1u);

  // A request pipelined after the subscription must be discarded, not
  // answered into the middle of the open chunked stream.
  const std::string late = "GET /again HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_EQ(::write(fd, late.data(), late.size()),
            static_cast<ssize_t>(late.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Broadcast("chan", "data: after\n\n");

  std::string got;
  char buf[1024];
  while (got.find("data: after") == std::string::npos &&
         std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    got.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(got.find("data: after"), std::string::npos) << got;
  // Exactly one status line in the stream: the subscription's own 200.
  EXPECT_EQ(got.find("HTTP/1.1"), got.rfind("HTTP/1.1")) << got;
}

TEST(HttpServerTest, ErrorResponseIsQueuedOnlyOnce) {
  net::HttpServer server;
  ASSERT_TRUE(server.Start(EphemeralOptions(), EchoHandler).ok());
  int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  const std::string bad = "GARBAGE\r\n\r\n";
  ASSERT_EQ(::write(fd, bad.data(), bad.size()),
            static_cast<ssize_t>(bad.size()));
  // More bytes on the same connection: with the malformed prefix discarded
  // by the first 400, they must not provoke a second error response.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const std::string more = "MORE\r\n\r\n";
  (void)!::write(fd, more.data(), more.size());  // may race the server close
  std::string reply;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t first = reply.find("HTTP/1.1 400");
  ASSERT_NE(first, std::string::npos) << reply;
  EXPECT_EQ(reply.find("HTTP/1.1 400", first + 1), std::string::npos) << reply;
}

// ---------------------------------------------------------------------------
// Prometheus exposition.

TEST(PrometheusTest, GoldenExposition) {
  obs::Registry registry;
  registry.GetCounter("avs.edges_generated")->Add(100);
  registry.GetGauge("mem.m0.used_bytes")->Set(1024);
  registry.GetGauge("mem.m1.used_bytes")->Set(2048);
  registry.GetGauge("mem.tag.scope buffer.peak_bytes")->Set(512);
  registry.SetMachineStat(0, "cpu_seconds", 1.5);
  obs::Histogram* h = registry.GetHistogram("scope.bytes");
  h->Observe(0);  // bucket 0: exactly the zeros
  h->Observe(1);  // bucket 1: le="1"
  h->Observe(5);  // bucket 3: values 4..7, le="7"

  const std::string expected =
      "# TYPE tg_avs_edges_generated counter\n"
      "tg_avs_edges_generated 100\n"
      "# TYPE tg_machine_cpu_seconds gauge\n"
      "tg_machine_cpu_seconds{machine=\"m0\"} 1.5\n"
      "# TYPE tg_mem_tag_peak_bytes gauge\n"
      "tg_mem_tag_peak_bytes{tag=\"scope buffer\"} 512\n"
      "# TYPE tg_mem_used_bytes gauge\n"
      "tg_mem_used_bytes{machine=\"m0\"} 1024\n"
      "tg_mem_used_bytes{machine=\"m1\"} 2048\n"
      "# TYPE tg_scope_bytes histogram\n"
      "tg_scope_bytes_bucket{le=\"0\"} 1\n"
      "tg_scope_bytes_bucket{le=\"1\"} 2\n"
      "tg_scope_bytes_bucket{le=\"3\"} 2\n"
      "tg_scope_bytes_bucket{le=\"7\"} 3\n"
      "tg_scope_bytes_bucket{le=\"+Inf\"} 3\n"
      "tg_scope_bytes_sum 6\n"
      "tg_scope_bytes_count 3\n";
  EXPECT_EQ(obs::serve::RenderPrometheus(registry), expected);
}

TEST(PrometheusTest, LabelValueEscaping) {
  EXPECT_EQ(obs::serve::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::serve::EscapeLabelValue("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd");
  obs::Registry registry;
  registry.GetGauge("mem.tag.odd\"tag.peak_bytes")->Set(1);
  EXPECT_NE(obs::serve::RenderPrometheus(registry).find(
                "tg_mem_tag_peak_bytes{tag=\"odd\\\"tag\"} 1"),
            std::string::npos);
}

TEST(PrometheusTest, DottedNamesMapToUnderscores) {
  obs::Registry registry;
  registry.GetCounter("fault.injected_crashes")->Add(3);
  const std::string text = obs::serve::RenderPrometheus(registry);
  EXPECT_NE(text.find("# TYPE tg_fault_injected_crashes counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("tg_fault_injected_crashes 3\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Admin server endpoints.

class AdminServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::Registry::Global().Reset();
    obs::SetCurrentPhase("idle");
  }
  void TearDown() override {
    obs::SetEnabled(false);
    obs::Registry::Global().Reset();
    obs::SetCurrentPhase(nullptr);
  }
};

TEST_F(AdminServerTest, HealthzReportsPhase) {
  obs::serve::AdminServer admin;
  ASSERT_TRUE(admin.Start({}).ok());
  obs::SetCurrentPhase("generate");
  const std::string reply = Get(admin.port(), "/healthz");
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(BodyOf(reply).find("ok phase=generate uptime_s="),
            std::string::npos)
      << reply;
}

TEST_F(AdminServerTest, MetricsServesLiveRegistry) {
  obs::GetCounter("progress.edges")->Add(12345);
  obs::serve::AdminServer admin;
  ASSERT_TRUE(admin.Start({}).ok());
  const std::string reply = Get(admin.port(), "/metrics");
  EXPECT_NE(reply.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << reply;
  EXPECT_NE(BodyOf(reply).find("tg_progress_edges 12345\n"),
            std::string::npos);
}

TEST_F(AdminServerTest, ReportJsonRoundTripsWithLiveMeta) {
  obs::GetCounter("avs.edges_generated")->Add(7);
  obs::serve::AdminOptions options;
  options.meta["scale"] = "20";
  obs::serve::AdminServer admin;
  ASSERT_TRUE(admin.Start(options).ok());
  const std::string body = BodyOf(Get(admin.port(), "/report.json"));
  obs::RunReport report;
  ASSERT_TRUE(obs::RunReport::FromJson(body, &report).ok()) << body;
  EXPECT_EQ(report.meta["live"], "1");
  EXPECT_EQ(report.meta["scale"], "20");
  EXPECT_EQ(report.meta["phase"], "idle");
  EXPECT_EQ(report.counters["avs.edges_generated"], 7u);
}

TEST_F(AdminServerTest, TraceAndIndexAndNotFound) {
  obs::serve::AdminServer admin;
  ASSERT_TRUE(admin.Start({}).ok());
  EXPECT_NE(Get(admin.port(), "/trace").find("traceEvents"),
            std::string::npos);
  EXPECT_NE(BodyOf(Get(admin.port(), "/")).find("GET /metrics"),
            std::string::npos);
  EXPECT_NE(Get(admin.port(), "/no-such").find("HTTP/1.1 404 Not Found"),
            std::string::npos);
}

TEST_F(AdminServerTest, SseStreamsTicksAndFaultEvents) {
  obs::serve::AdminServer admin;
  ASSERT_TRUE(admin.Start({}).ok());

  int fd = ConnectTo(admin.port());
  ASSERT_GE(fd, 0);
  const std::string req = "GET /events HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_EQ(::write(fd, req.data(), req.size()),
            static_cast<ssize_t>(req.size()));

  // Drive ticks from a fast sampler.
  obs::SamplerOptions sampler_options;
  sampler_options.interval_ms = 2;
  sampler_options.sample_rss = false;
  sampler_options.emit_trace_counters = false;
  obs::Sampler sampler(sampler_options);
  sampler.Start();

  // Inject the structured event only once the hello frame proves the
  // subscription is registered — a broadcast before that is (correctly)
  // dropped, there is no replay for one-shot events.
  bool event_sent = false;
  std::string got;
  char buf[2048];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((!event_sent || got.find("event: tick") == std::string::npos ||
          got.find("event: fault") == std::string::npos) &&
         std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    got.append(buf, static_cast<std::size_t>(n));
    if (!event_sent && got.find("event: hello") != std::string::npos) {
      obs::Event event;
      event.kind = "fault.crash";
      event.machine = 1;
      event.ordinal = 3;
      event.detail = "m1:crash@chunk=3";
      obs::Registry::Global().RecordEvent(event);
      event_sent = true;
    }
  }
  sampler.Stop();
  ::close(fd);

  EXPECT_NE(got.find("event: hello"), std::string::npos) << got;
  EXPECT_NE(got.find("event: tick"), std::string::npos) << got;
  EXPECT_NE(got.find("\"edges_per_sec\""), std::string::npos) << got;
  EXPECT_NE(got.find("event: fault"), std::string::npos) << got;
  EXPECT_NE(got.find("\"m1:crash@chunk=3\""), std::string::npos) << got;
}

// The TSan target: scrape every endpoint from several client threads while a
// multi-worker generation (plus a live sampler) is running. Fails under
// -fsanitize=thread if any snapshot path races the writers.
TEST_F(AdminServerTest, ConcurrentScrapesDuringActiveRun) {
  obs::serve::AdminServer admin;
  ASSERT_TRUE(admin.Start({}).ok());
  const int port = admin.port();

  obs::SamplerOptions sampler_options;
  sampler_options.interval_ms = 1;
  sampler_options.sample_rss = false;
  obs::Sampler sampler(sampler_options);
  sampler.Start();

  std::atomic<bool> done{false};
  std::vector<std::thread> scrapers;
  const char* paths[] = {"/metrics", "/report.json", "/healthz"};
  for (const char* path : paths) {
    scrapers.emplace_back([port, path, &done] {
      while (!done.load(std::memory_order_relaxed)) {
        const std::string reply = Get(port, path);
        EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos) << path;
      }
    });
  }

  core::TrillionGConfig config;
  config.scale = 16;
  config.edge_factor = 8;
  config.num_workers = 4;
  std::uint64_t total_edges = 0;
  std::mutex total_mu;
  const core::GenerateStats stats = core::Generate(
      config, [&](int, VertexId, VertexId) -> std::unique_ptr<core::ScopeSink> {
        class Locked : public core::ScopeSink {
         public:
          Locked(std::uint64_t* total, std::mutex* mu)
              : total_(total), mu_(mu) {}
          void ConsumeScope(VertexId, const VertexId*,
                            std::size_t n) override {
            std::lock_guard<std::mutex> lock(*mu_);
            *total_ += n;
          }

         private:
          std::uint64_t* total_;
          std::mutex* mu_;
        };
        return std::make_unique<Locked>(&total_edges, &total_mu);
      });
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : scrapers) t.join();
  sampler.Stop();

  EXPECT_EQ(stats.num_edges, total_edges);
  // The post-run scrape agrees with the registry's final counter. The
  // needle is newline-anchored so it cannot match the "# TYPE" line.
  const std::string text = BodyOf(Get(port, "/metrics"));
  const std::string needle = "\ntg_avs_edges_generated ";
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos) << text;
  EXPECT_EQ(std::strtoull(text.c_str() + at + needle.size(), nullptr, 10),
            stats.num_edges);
}

}  // namespace
}  // namespace tg
