// End-to-end pipelines across modules: generator -> format -> reader ->
// analysis, multi-worker shard merging, and cross-generator distribution
// agreement.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "analysis/degree_dist.h"
#include "baseline/rmat.h"
#include "baseline/wesp.h"
#include "core/trilliong.h"
#include "format/adj6.h"
#include "format/csr6.h"
#include "format/tsv.h"
#include "storage/temp_dir.h"

namespace tg {
namespace {

TEST(IntegrationTest, GenerateAdj6ReadAnalyze) {
  storage::TempDir dir;
  core::TrillionGConfig config;
  config.scale = 14;
  config.edge_factor = 16;
  config.num_workers = 3;

  std::vector<std::string> shards;
  core::GenerateStats stats = core::Generate(
      config,
      [&](int worker, VertexId, VertexId) -> std::unique_ptr<core::ScopeSink> {
        shards.push_back(dir.File("shard" + std::to_string(worker) + ".adj6"));
        return std::make_unique<format::Adj6Writer>(shards.back());
      });

  // Read all shards back; recompute degrees.
  std::vector<std::uint32_t> out_degrees(config.NumVertices(), 0);
  std::vector<std::uint32_t> in_degrees(config.NumVertices(), 0);
  std::uint64_t read_edges = 0;
  std::set<VertexId> seen_scopes;
  for (const std::string& shard : shards) {
    ASSERT_TRUE(format::Adj6Reader::ForEach(
                    shard,
                    [&](VertexId u, const std::vector<VertexId>& adj) {
                      EXPECT_TRUE(seen_scopes.insert(u).second)
                          << "scope duplicated across shards";
                      out_degrees[u] += adj.size();
                      for (VertexId v : adj) ++in_degrees[v];
                      read_edges += adj.size();
                    })
                    .ok());
  }
  EXPECT_EQ(read_edges, stats.num_edges);
  EXPECT_EQ(seen_scopes.size(), stats.num_scopes);

  // Distribution sanity after the full round trip.
  EXPECT_NEAR(analysis::PopcountClassSlope(out_degrees), -1.662, 0.15);
  auto hist = analysis::DegreeHistogram::FromDegrees(out_degrees);
  EXPECT_EQ(hist.NumEdges(), stats.num_edges);
  EXPECT_EQ(hist.MaxDegree(), stats.max_degree);
}

TEST(IntegrationTest, Csr6ShardsCoverExactVertexRanges) {
  storage::TempDir dir;
  core::TrillionGConfig config;
  config.scale = 12;
  config.edge_factor = 8;
  config.num_workers = 4;

  struct Shard {
    std::string path;
    VertexId lo, hi;
  };
  std::vector<Shard> shards;
  std::mutex mu;
  core::GenerateStats stats = core::Generate(
      config,
      [&](int, VertexId lo, VertexId hi) -> std::unique_ptr<core::ScopeSink> {
        std::lock_guard<std::mutex> lock(mu);
        std::string path =
            dir.File("s" + std::to_string(shards.size()) + ".csr6");
        shards.push_back({path, lo, hi});
        return std::make_unique<format::Csr6Writer>(path, lo, hi);
      });

  std::sort(shards.begin(), shards.end(),
            [](const Shard& a, const Shard& b) { return a.lo < b.lo; });
  EXPECT_EQ(shards.front().lo, 0u);
  EXPECT_EQ(shards.back().hi, config.NumVertices());
  std::uint64_t total_edges = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i > 0) {
      EXPECT_EQ(shards[i].lo, shards[i - 1].hi);
    }
    format::Csr6Reader reader(shards[i].path);
    ASSERT_TRUE(reader.status().ok());
    EXPECT_EQ(reader.lo(), shards[i].lo);
    EXPECT_EQ(reader.hi(), shards[i].hi);
    total_edges += reader.num_edges();
    for (VertexId u = reader.lo(); u < reader.hi(); ++u) {
      auto nbrs = reader.Neighbors(u);
      EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    }
  }
  EXPECT_EQ(total_edges, stats.num_edges);
}

TEST(IntegrationTest, TrillionGMatchesRmatDistribution) {
  // The headline correctness claim (Figure 8): TrillionG's AVS generation
  // draws from the same distribution as edge-at-a-time RMAT. Compare
  // in-degree histograms via KS distance.
  const int scale = 14;
  core::TrillionGConfig config;
  config.scale = scale;
  config.edge_factor = 16;
  analysis::DegreeSink tg_sink(config.NumVertices());
  core::GenerateToSink(config, &tg_sink);

  std::vector<std::uint32_t> rmat_in(VertexId{1} << scale, 0);
  std::vector<std::uint32_t> rmat_out(VertexId{1} << scale, 0);
  baseline::RmatOptions rmat;
  rmat.scale = scale;
  baseline::RmatMem(rmat, [&](const Edge& e) {
    ++rmat_out[e.src];
    ++rmat_in[e.dst];
  });

  double ks_in = analysis::DegreeHistogram::KsDistance(
      tg_sink.InHistogram(),
      analysis::DegreeHistogram::FromDegrees(rmat_in));
  double ks_out = analysis::DegreeHistogram::KsDistance(
      tg_sink.OutHistogram(),
      analysis::DegreeHistogram::FromDegrees(rmat_out));
  EXPECT_LT(ks_in, 0.05);
  EXPECT_LT(ks_out, 0.05);
}

TEST(IntegrationTest, WespShardsFormAGlobalGraph) {
  storage::TempDir dir;
  cluster::SimCluster cluster({2, 2, 0, {}});
  baseline::WespOptions options;
  options.scale = 12;
  options.num_edges = 1 << 14;

  std::vector<std::string> paths;
  std::vector<std::shared_ptr<format::TsvWriter>> writers;
  for (int w = 0; w < cluster.num_workers(); ++w) {
    paths.push_back(dir.File("w" + std::to_string(w) + ".tsv"));
    writers.push_back(std::make_shared<format::TsvWriter>(paths.back()));
  }
  baseline::WespStats stats =
      baseline::RunWesp(&cluster, options, [&](int w) {
        auto writer = writers[w];
        return [writer](const Edge& e) { writer->WriteEdge(e.src, e.dst); };
      });
  for (auto& w : writers) w->Finish();

  std::vector<Edge> all;
  for (const std::string& path : paths) {
    std::vector<Edge> part = format::TsvReader::ReadAll(path);
    all.insert(all.end(), part.begin(), part.end());
  }
  EXPECT_EQ(all.size(), stats.num_edges);
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
}

TEST(IntegrationTest, TsvAndAdj6EncodeTheSameGraphAcrossWorkers) {
  storage::TempDir dir;
  core::TrillionGConfig config;
  config.scale = 11;
  config.edge_factor = 8;
  config.num_workers = 2;

  auto collect = [&](bool adj6) {
    std::vector<std::string> files;
    core::Generate(config, [&](int worker, VertexId lo, VertexId hi)
                               -> std::unique_ptr<core::ScopeSink> {
      std::string path = dir.File((adj6 ? "a" : "t") + std::to_string(worker));
      files.push_back(path);
      if (adj6) return std::make_unique<format::Adj6Writer>(path);
      (void)lo;
      (void)hi;
      return std::make_unique<format::TsvWriter>(path);
    });
    std::vector<Edge> edges;
    for (const std::string& f : files) {
      if (adj6) {
        format::Adj6Reader::ForEach(
            f, [&](VertexId u, const std::vector<VertexId>& adj) {
              for (VertexId v : adj) edges.push_back(Edge{u, v});
            });
      } else {
        std::vector<Edge> part = format::TsvReader::ReadAll(f);
        edges.insert(edges.end(), part.begin(), part.end());
      }
    }
    std::sort(edges.begin(), edges.end());
    return edges;
  };

  EXPECT_EQ(collect(false), collect(true));
}

}  // namespace
}  // namespace tg
