// Tests for obs/trace.h: the lock-free TraceBuffer ring, the merged drain,
// and the Chrome Trace Event JSON exporter — including a schema validation
// pass (required keys, balanced B/E pairs, monotonic timestamps) over the
// emitted JSON and a concurrent writers-vs-draining-reader stress test that
// the ThreadSanitizer CI job runs under -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/json.h"

namespace tg::obs {
namespace {

// Every test starts with tracing off, an empty trace state, and a zeroed
// registry.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetAll(); }
  void TearDown() override { ResetAll(); }

  static void ResetAll() {
    SetTraceEnabled(false);
    SetEnabled(false);
    ResetTraceForTest();
    Registry::Global().Reset();
  }
};

TEST_F(TraceTest, DisabledEmitsNothing) {
  ASSERT_FALSE(TraceEnabled());
  TraceBegin("t.phase");
  TraceInstant("t.marker");
  TraceCounter("t.counter", 42.0);
  TraceWire("t.wire", 0.5);
  TraceEnd("t.phase");
  TraceSnapshot snapshot = DrainTrace();
  EXPECT_TRUE(snapshot.rows.empty());
  EXPECT_EQ(snapshot.dropped, 0u);
}

TEST_F(TraceTest, BufferPreservesEmissionOrder) {
  TraceBuffer buffer(8);
  for (int i = 0; i < 5; ++i) {
    TraceEvent event;
    event.ts_ns = 100 + i;
    event.name = "t.event";
    event.type = TraceEventType::kInstant;
    buffer.Emit(event);
  }
  std::vector<TraceEvent> out;
  EXPECT_EQ(buffer.Drain(&out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].ts_ns, 100 + i);
    EXPECT_STREQ(out[i].name, "t.event");
  }
  EXPECT_EQ(buffer.emitted(), 5u);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST_F(TraceTest, BufferRingOverwriteKeepsNewestAndCountsDropped) {
  TraceBuffer buffer(4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent event;
    event.ts_ns = i;
    event.name = "t.event";
    buffer.Emit(event);
  }
  std::vector<TraceEvent> out;
  buffer.Drain(&out);
  ASSERT_EQ(out.size(), 4u);  // only the newest `capacity` survive
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i].ts_ns, 6 + i);
  EXPECT_EQ(buffer.emitted(), 10u);
  EXPECT_EQ(buffer.dropped(), 6u);
}

TEST_F(TraceTest, DrainPublishesDropCounter) {
  SetTraceEnabled(true);
  TraceInstant("t.marker");
  TraceSnapshot snapshot = DrainTrace();
  ASSERT_EQ(snapshot.rows.size(), 1u);
  EXPECT_EQ(snapshot.dropped, 0u);
  EXPECT_EQ(GetCounter("trace.dropped_events")->value(), 0u);
}

TEST_F(TraceTest, InternTraceNameIsStableAndIdempotent) {
  const char* a = InternTraceName("runtime.name");
  const char* b = InternTraceName("runtime.name");
  const char* c = InternTraceName("runtime.other");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_STREQ(a, "runtime.name");
  EXPECT_STREQ(c, "runtime.other");
}

TEST_F(TraceTest, EventsCarryTheThreadMachineTag) {
  SetTraceEnabled(true);
  {
    ScopedMachine machine(3);
    TraceInstant("t.tagged");
  }
  TraceInstant("t.untagged");
  TraceSnapshot snapshot = DrainTrace();
  ASSERT_EQ(snapshot.rows.size(), 2u);
  std::map<std::string, int> machine_of;
  for (const TraceSnapshot::Row& row : snapshot.rows) {
    machine_of[row.event.name] = row.event.machine;
  }
  EXPECT_EQ(machine_of["t.tagged"], 3);
  EXPECT_EQ(machine_of["t.untagged"], -1);
}

TEST_F(TraceTest, SpansEmitBeginEndPairs) {
  SetEnabled(true);  // spans consult obs::Enabled() first
  SetTraceEnabled(true);
  {
    TG_SPAN("outer");
    TG_SPAN("inner");
  }
  TraceSnapshot snapshot = DrainTrace();
  ASSERT_EQ(snapshot.rows.size(), 4u);
  // Emission order: B(outer) B(inner) E(inner) E(outer).
  EXPECT_EQ(snapshot.rows[0].event.type, TraceEventType::kBegin);
  EXPECT_STREQ(snapshot.rows[0].event.name, "outer");
  EXPECT_EQ(snapshot.rows[1].event.type, TraceEventType::kBegin);
  EXPECT_STREQ(snapshot.rows[1].event.name, "inner");
  EXPECT_EQ(snapshot.rows[2].event.type, TraceEventType::kEnd);
  EXPECT_STREQ(snapshot.rows[2].event.name, "inner");
  EXPECT_EQ(snapshot.rows[3].event.type, TraceEventType::kEnd);
  EXPECT_STREQ(snapshot.rows[3].event.name, "outer");
  // Timestamps never run backwards within one thread.
  for (std::size_t i = 1; i < snapshot.rows.size(); ++i) {
    EXPECT_GE(snapshot.rows[i].event.ts_ns, snapshot.rows[i - 1].event.ts_ns);
  }
}

// --- Chrome Trace Event JSON schema validation -----------------------------

// Emits a representative trace (two simulated machines, nested spans, a wire
// charge, a counter) and returns the parsed JSON document.
json::Value EmitAndExport() {
  SetEnabled(true);
  SetTraceEnabled(true);
  std::thread machine0([] {
    ScopedMachine machine(0);
    TG_SPAN("generate");
    { TG_SPAN("scope"); }
    TraceWire("net.transfer", 0.25);
  });
  machine0.join();
  std::thread machine1([] {
    ScopedMachine machine(1);
    TG_SPAN("generate");
    TraceCounter("progress.edges", 128.0);
    TraceInstant("flush");
  });
  machine1.join();
  std::string text = TraceToChromeJson(DrainTrace());
  json::Value doc;
  Status status = json::Parse(text, &doc);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return doc;
}

TEST_F(TraceTest, ChromeJsonHasRequiredKeysOnEveryEvent) {
  json::Value doc = EmitAndExport();
  ASSERT_TRUE(doc.is_object());
  const json::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->array.size(), 0u);
  for (const json::Value& event : events->array) {
    ASSERT_TRUE(event.is_object());
    const json::Value* name = event.Find("name");
    const json::Value* ph = event.Find("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    EXPECT_TRUE(name->is_string());
    ASSERT_TRUE(ph->is_string());
    ASSERT_NE(event.Find("pid"), nullptr);
    EXPECT_TRUE(event.Find("pid")->is_number());
    // process_name metadata is process-scoped and carries no tid; every
    // other event must name its thread track.
    if (!(ph->str == "M" && name->str == "process_name")) {
      ASSERT_NE(event.Find("tid"), nullptr);
      EXPECT_TRUE(event.Find("tid")->is_number());
    }
    if (ph->str != "M") {  // metadata events carry no timestamp
      ASSERT_NE(event.Find("ts"), nullptr);
      EXPECT_TRUE(event.Find("ts")->is_number());
    }
    // Only phases the exporter is specified to produce.
    EXPECT_TRUE(ph->str == "B" || ph->str == "E" || ph->str == "i" ||
                ph->str == "C" || ph->str == "X" || ph->str == "M")
        << "unexpected ph: " << ph->str;
  }
}

TEST_F(TraceTest, ChromeJsonBalancedBeginEndAndMonotonicTimestamps) {
  json::Value doc = EmitAndExport();
  const json::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::map<std::pair<double, double>, int> depth;     // (pid, tid) -> open B
  std::map<std::pair<double, double>, double> last_ts;
  int begins = 0;
  for (const json::Value& event : events->array) {
    const std::string& ph = event.Find("ph")->str;
    if (ph == "M") continue;
    std::pair<double, double> track = {event.Find("pid")->number,
                                       event.Find("tid")->number};
    double ts = event.Find("ts")->number;
    auto it = last_ts.find(track);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "timestamps regress on a track";
    }
    last_ts[track] = ts;
    if (ph == "B") {
      ++depth[track];
      ++begins;
    } else if (ph == "E") {
      --depth[track];
      EXPECT_GE(depth[track], 0) << "E without matching B";
    }
  }
  EXPECT_GT(begins, 0);
  for (const auto& [track, open] : depth) {
    EXPECT_EQ(open, 0) << "unbalanced B/E on pid=" << track.first
                       << " tid=" << track.second;
  }
}

TEST_F(TraceTest, ChromeJsonMapsMachinesAndWireToProcesses) {
  json::Value doc = EmitAndExport();
  const json::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<std::string> process_names;
  for (const json::Value& event : events->array) {
    if (event.Find("ph")->str == "M" &&
        event.Find("name")->str == "process_name") {
      const json::Value* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      process_names.insert(args->Find("name")->StringOr(""));
    }
  }
  EXPECT_TRUE(process_names.count("machine 0"));
  EXPECT_TRUE(process_names.count("machine 1"));
  EXPECT_TRUE(process_names.count("simulated network"));
  // The wire charge becomes a complete event whose duration is *simulated*
  // time: 0.25 simulated seconds = 250000 trace microseconds.
  bool saw_wire_slice = false;
  for (const json::Value& event : events->array) {
    if (event.Find("ph")->str != "X") continue;
    saw_wire_slice = true;
    EXPECT_NEAR(event.Find("dur")->NumberOr(0), 250000.0, 1.0);
  }
  EXPECT_TRUE(saw_wire_slice);
}

TEST_F(TraceTest, WireTrackPresentEvenWithoutWireEvents) {
  SetTraceEnabled(true);
  TraceInstant("t.marker");
  std::string text = TraceToChromeJson(DrainTrace());
  json::Value doc;
  ASSERT_TRUE(json::Parse(text, &doc).ok());
  const json::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_wire_process = false;
  for (const json::Value& event : events->array) {
    if (event.Find("ph")->str == "M" &&
        event.Find("name")->str == "process_name" &&
        event.Find("args")->Find("name")->StringOr("") ==
            "simulated network") {
      saw_wire_process = true;
    }
  }
  EXPECT_TRUE(saw_wire_process);
}

// --- Concurrency -----------------------------------------------------------

// TSan-style stress: several writer threads emit into their per-thread rings
// while a reader drains the merged trace concurrently. The assertions are
// deliberately weak (no torn payloads, accounting adds up) — the real check
// is that ThreadSanitizer stays silent.
TEST_F(TraceTest, ConcurrentWritersVersusDrainingReader) {
  SetTraceEnabled(true);
  static constexpr int kWriters = 4;
  // Below TraceBuffer::kDefaultCapacity so the post-join drain is lossless.
  static constexpr int kEventsPerWriter = 10000;
  std::atomic<bool> stop{false};
  std::atomic<int> writers_done{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w, &writers_done] {
      ScopedMachine machine(w);
      for (int i = 0; i < kEventsPerWriter; ++i) {
        TraceCounter("stress.value", static_cast<double>(i));
      }
      writers_done.fetch_add(1, std::memory_order_release);
    });
  }
  std::thread reader([&stop] {
    while (!stop.load(std::memory_order_acquire)) {
      TraceSnapshot snapshot = DrainTrace();
      for (const TraceSnapshot::Row& row : snapshot.rows) {
        // A torn slot would show an interned-name mismatch or wild values.
        ASSERT_STREQ(row.event.name, "stress.value");
        ASSERT_GE(row.event.value, 0.0);
        ASSERT_LT(row.event.value, kEventsPerWriter);
        ASSERT_GE(row.event.machine, 0);
        ASSERT_LT(row.event.machine, kWriters);
      }
    }
  });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  ASSERT_EQ(writers_done.load(), kWriters);

  // Buffers outlive their threads: a post-join drain sees every event.
  TraceSnapshot final_snapshot = DrainTrace();
  EXPECT_EQ(final_snapshot.dropped, 0u);
  std::map<int, int> per_machine;
  for (const TraceSnapshot::Row& row : final_snapshot.rows) {
    ++per_machine[row.event.machine];
  }
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(per_machine[w], kEventsPerWriter) << "machine " << w;
  }
}

}  // namespace
}  // namespace tg::obs
