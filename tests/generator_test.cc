#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/avs_generator.h"
#include "core/cdf_vector.h"
#include "core/prefix_tables.h"
#include "core/scope_dedup.h"
#include "core/trilliong.h"
#include "model/edge_probability.h"
#include "obs/metrics.h"
#include "rng/lane_rng.h"

namespace tg::core {
namespace {

using model::EdgeProbability;
using model::NoiseVector;
using model::SeedMatrix;

/// Collects scopes in memory for inspection.
class VectorSink : public ScopeSink {
 public:
  void ConsumeScope(VertexId u, const VertexId* adj, std::size_t n) override {
    auto& dsts = scopes_[u];
    dsts.assign(adj, adj + n);
    num_edges_ += n;
  }

  const std::map<VertexId, std::vector<VertexId>>& scopes() const {
    return scopes_;
  }
  std::uint64_t num_edges() const { return num_edges_; }

 private:
  std::map<VertexId, std::vector<VertexId>> scopes_;
  std::uint64_t num_edges_ = 0;
};

TrillionGConfig SmallConfig(int scale = 10) {
  TrillionGConfig config;
  config.scale = scale;
  config.edge_factor = 8;
  config.rng_seed = 4242;
  return config;
}

/// Order-independent hash of the whole generated graph, usable with any
/// worker count (per-scope hashes commute under addition).
std::uint64_t HashedGraph(const TrillionGConfig& config) {
  class HashSink : public ScopeSink {
   public:
    explicit HashSink(std::atomic<std::uint64_t>* acc) : acc_(acc) {}
    void ConsumeScope(VertexId u, const VertexId* adj,
                      std::size_t n) override {
      std::uint64_t h = rng::MixSeeds(u, n);
      for (std::size_t i = 0; i < n; ++i) h = rng::MixSeeds(h, adj[i]);
      acc_->fetch_add(h, std::memory_order_relaxed);
    }

   private:
    std::atomic<std::uint64_t>* acc_;
  };
  std::atomic<std::uint64_t> acc{0};
  Generate(config,
           [&](int, VertexId, VertexId) -> std::unique_ptr<ScopeSink> {
             return std::make_unique<HashSink>(&acc);
           });
  return acc.load();
}

TEST(AvsGeneratorTest, TotalEdgesCloseToTarget) {
  TrillionGConfig config = SmallConfig(12);
  VectorSink sink;
  GenerateStats stats = GenerateToSink(config, &sink);
  double expected = static_cast<double>(config.NumEdges());
  // Theorem 1: total is stochastic, stddev is O(sqrt(|E|)).
  EXPECT_NEAR(static_cast<double>(stats.num_edges), expected,
              5 * std::sqrt(expected));
  EXPECT_EQ(stats.num_edges, sink.num_edges());
}

TEST(AvsGeneratorTest, NoDuplicateEdgesWithinScope) {
  TrillionGConfig config = SmallConfig(10);
  VectorSink sink;
  GenerateToSink(config, &sink);
  for (const auto& [u, dsts] : sink.scopes()) {
    std::set<VertexId> unique(dsts.begin(), dsts.end());
    EXPECT_EQ(unique.size(), dsts.size()) << "scope " << u;
  }
}

TEST(AvsGeneratorTest, AllDestinationsInRange) {
  TrillionGConfig config = SmallConfig(10);
  VectorSink sink;
  GenerateToSink(config, &sink);
  const VertexId n = config.NumVertices();
  for (const auto& [u, dsts] : sink.scopes()) {
    EXPECT_LT(u, n);
    for (VertexId v : dsts) EXPECT_LT(v, n);
  }
}

TEST(AvsGeneratorTest, DeterministicGivenSeed) {
  TrillionGConfig config = SmallConfig(10);
  VectorSink sink1, sink2;
  GenerateToSink(config, &sink1);
  GenerateToSink(config, &sink2);
  EXPECT_EQ(sink1.scopes(), sink2.scopes());
}

TEST(AvsGeneratorTest, DifferentSeedsProduceDifferentGraphs) {
  TrillionGConfig config = SmallConfig(10);
  VectorSink sink1, sink2;
  GenerateToSink(config, &sink1);
  config.rng_seed = 777;
  GenerateToSink(config, &sink2);
  EXPECT_NE(sink1.scopes(), sink2.scopes());
}

TEST(AvsGeneratorTest, WorkerCountDoesNotChangeOutput) {
  // Per-scope RNG forking must make the graph identical for any worker
  // count: compare a 1-worker run against a 4-worker run, merging shards.
  TrillionGConfig config = SmallConfig(11);

  config.num_workers = 1;
  VectorSink single;
  GenerateToSink(config, &single);
  const std::map<VertexId, std::vector<VertexId>>& reference = single.scopes();
  const std::uint64_t reference_edges = single.num_edges();

  config.num_workers = 4;
  std::vector<std::shared_ptr<VectorSink>> shard_sinks(4);
  class Shard : public ScopeSink {
   public:
    explicit Shard(VectorSink* inner) : inner_(inner) {}
    void ConsumeScope(VertexId u, const VertexId* adj,
                      std::size_t n) override {
      inner_->ConsumeScope(u, adj, n);
    }

   private:
    VectorSink* inner_;
  };
  Generate(config, [&](int w, VertexId, VertexId) -> std::unique_ptr<ScopeSink> {
    shard_sinks[w] = std::make_shared<VectorSink>();
    return std::make_unique<Shard>(shard_sinks[w].get());
  });

  std::map<VertexId, std::vector<VertexId>> merged;
  std::uint64_t merged_edges = 0;
  for (const auto& sink : shard_sinks) {
    for (const auto& [u, dsts] : sink->scopes()) {
      EXPECT_EQ(merged.count(u), 0u) << "scope split across workers";
      merged[u] = dsts;
    }
    merged_edges += sink->num_edges();
  }
  EXPECT_EQ(merged, reference);
  EXPECT_EQ(merged_edges, reference_edges);
}

TEST(AvsGeneratorTest, ScopesArriveInIncreasingOrder) {
  TrillionGConfig config = SmallConfig(10);
  class OrderSink : public ScopeSink {
   public:
    void ConsumeScope(VertexId u, const VertexId*, std::size_t) override {
      EXPECT_TRUE(last_ == ~VertexId{0} || u > last_);
      last_ = u;
    }
    VertexId last_ = ~VertexId{0};
  };
  OrderSink sink;
  GenerateToSink(config, &sink);
}

TEST(AvsGeneratorTest, OutDegreeMeanMatchesTheorem1) {
  // Empirical mean degree of a specific vertex over many runs ~ |E| * P_u->.
  // Scale/edge count chosen so the expected degree (~66) is well below |V|,
  // keeping dedup clipping negligible.
  const int scale = 10;
  SeedMatrix seed = SeedMatrix::Graph500();
  EdgeProbability prob(seed, scale);
  NoiseVector noise(seed, scale);
  const std::uint64_t num_edges = 1024;
  DeterminerOptions opts;
  AvsRangeGenerator<double> gen(&noise, num_edges, opts);

  VertexId u = 0;  // densest row
  double expected = num_edges * prob.RowProbability(u);
  double total = 0;
  const int runs = 300;
  ScopeScratch<double> scratch;  // reused across runs, like a real worker
  for (int r = 0; r < runs; ++r) {
    rng::Rng root(9000 + r);
    CountingSink sink;
    AvsWorkerStats stats;
    gen.GenerateScope(u, root, &scratch, &stats, &sink);
    total += static_cast<double>(stats.num_edges);
  }
  double mean = total / runs;
  // Dedup clips a little mass; allow 5% + sampling noise.
  EXPECT_NEAR(mean, expected, 0.05 * expected + 3.0);
}

TEST(AvsGeneratorTest, InDegreeDistributionMatchesColumnMarginals) {
  // Aggregate in-degree mass of mid-tail destination bands must match the
  // column marginals E[indeg(v)] = |E| * P_->v. Head vertices are excluded:
  // per-scope dedup legitimately clips columns whose per-cell expected
  // multiplicity exceeds 1 (the paper's epsilon ~ 0.01 duplicate rate is an
  // aggregate, not a head-cell statement).
  TrillionGConfig config = SmallConfig(12);
  config.edge_factor = 1;
  VectorSink sink;
  GenerateToSink(config, &sink);

  std::vector<double> indeg(config.NumVertices(), 0.0);
  for (const auto& [u, dsts] : sink.scopes()) {
    (void)u;
    for (VertexId v : dsts) indeg[v] += 1;
  }
  EdgeProbability prob(config.seed, config.scale);
  // Band = all destinations with popcount 3 (mid-tail: per-cell multiplicity
  // far below 1, so dedup is negligible).
  double observed = 0.0, expected = 0.0;
  for (VertexId v = 0; v < config.NumVertices(); ++v) {
    if (std::popcount(v) == 3) {
      observed += indeg[v];
      expected += config.NumEdges() * prob.ColProbability(v);
    }
  }
  EXPECT_NEAR(observed, expected, 0.05 * expected + 5 * std::sqrt(expected));
}

TEST(AvsGeneratorTest, PeakScopeBytesIsSmall) {
  TrillionGConfig config = SmallConfig(14);
  config.edge_factor = 8;
  CountingSink sink;
  GenerateStats stats = GenerateToSink(config, &sink);
  // O(d_max): the working set is bounded by the dedup set (<= 32 bytes per
  // entry at worst-case load) plus the adjacency buffer (8 bytes per entry).
  EXPECT_GT(stats.max_degree, 0u);
  EXPECT_LT(stats.peak_scope_bytes, 40 * stats.max_degree + 4096);
  // And it is far below the O(|E|) footprint a WES generator would need.
  EXPECT_LT(stats.peak_scope_bytes,
            config.NumEdges() * sizeof(VertexId) / 8);
}

TEST(AvsGeneratorTest, MemoryBudgetOomPropagates) {
  TrillionGConfig config = SmallConfig(12);
  MemoryBudget tiny_budget(64);  // far below any scope working set
  config.budget = &tiny_budget;
  CountingSink sink;
  EXPECT_THROW(GenerateToSink(config, &sink), OomError);
}

TEST(AvsGeneratorTest, MemoryBudgetGenerousSucceeds) {
  TrillionGConfig config = SmallConfig(12);
  MemoryBudget budget(64 << 20);
  config.budget = &budget;
  CountingSink sink;
  GenerateStats stats = GenerateToSink(config, &sink);
  EXPECT_GT(stats.num_edges, 0u);
  EXPECT_GT(budget.peak_bytes(), 0u);
  EXPECT_EQ(budget.used_bytes(), 0u);  // all scope allocations released
}

TEST(AvsGeneratorTest, NoiseChangesGraphButKeepsSize) {
  TrillionGConfig config = SmallConfig(12);
  VectorSink plain;
  GenerateToSink(config, &plain);
  config.noise = 0.1;
  VectorSink noisy;
  GenerateToSink(config, &noisy);
  EXPECT_NE(plain.scopes(), noisy.scopes());
  double expected = static_cast<double>(config.NumEdges());
  EXPECT_NEAR(static_cast<double>(noisy.num_edges()), expected,
              0.02 * expected + 5 * std::sqrt(expected));
}

TEST(AvsGeneratorTest, DirectionInSwapsDegreesStatistically) {
  // AVS-I with an asymmetric seed: scopes are destinations, so the "scope
  // degree" distribution should match the seed's *column* marginals.
  TrillionGConfig config = SmallConfig(10);
  config.seed = SeedMatrix(0.6, 0.25, 0.1, 0.05);  // strongly asymmetric
  config.direction = Direction::kIn;
  VectorSink sink;
  GenerateToSink(config, &sink);
  EdgeProbability prob(config.seed, config.scale);
  // Scope 0 should have ~|E| * P_->0 neighbors (column marginal).
  auto it = sink.scopes().find(0);
  ASSERT_NE(it, sink.scopes().end());
  double expected = config.NumEdges() * prob.ColProbability(0);
  EXPECT_NEAR(static_cast<double>(it->second.size()), expected,
              0.3 * expected);
}

TEST(AvsGeneratorTest, DoubleDoublePrecisionProducesValidGraph) {
  TrillionGConfig config = SmallConfig(10);
  config.precision = Precision::kDoubleDouble;
  VectorSink sink;
  GenerateStats stats = GenerateToSink(config, &sink);
  double expected = static_cast<double>(config.NumEdges());
  EXPECT_NEAR(static_cast<double>(stats.num_edges), expected,
              5 * std::sqrt(expected));
  for (const auto& [u, dsts] : sink.scopes()) {
    (void)u;
    for (VertexId v : dsts) EXPECT_LT(v, config.NumVertices());
  }
}

TEST(AvsGeneratorTest, AblationVariantsProduceSameEdgeCountScale) {
  // All 8 idea combinations must produce statistically identical graphs.
  TrillionGConfig config = SmallConfig(10);
  double expected = static_cast<double>(config.NumEdges());
  for (bool idea1 : {false, true}) {
    for (bool idea2 : {false, true}) {
      for (bool idea3 : {false, true}) {
        config.determiner = {idea1, idea2, idea3};
        CountingSink sink;
        GenerateStats stats = GenerateToSink(config, &sink);
        EXPECT_NEAR(static_cast<double>(stats.num_edges), expected,
                    5 * std::sqrt(expected))
            << idea1 << idea2 << idea3;
      }
    }
  }
}

TEST(AvsGeneratorTest, RecVecBuildCountReflectsIdea1) {
  TrillionGConfig config = SmallConfig(10);
  CountingSink sink1;
  config.determiner.reuse_rec_vec = true;
  GenerateStats cached = GenerateToSink(config, &sink1);
  // With reuse: one build per scope (plus none per edge).
  EXPECT_LE(cached.rec_vec_builds, config.NumVertices());

  config.determiner.reuse_rec_vec = false;
  CountingSink sink2;
  GenerateStats uncached = GenerateToSink(config, &sink2);
  // Without reuse: at least one build per edge attempt.
  EXPECT_GT(uncached.rec_vec_builds, uncached.num_edges);
  EXPECT_GT(uncached.rec_vec_builds, cached.rec_vec_builds * 4);
}

TEST(AvsGeneratorTest, SelfLoopExclusion) {
  TrillionGConfig config = SmallConfig(10);
  config.edge_factor = 16;

  VectorSink with_loops;
  GenerateToSink(config, &with_loops);
  std::uint64_t loops = 0;
  for (const auto& [u, dsts] : with_loops.scopes()) {
    for (VertexId v : dsts) {
      if (v == u) ++loops;
    }
  }
  // Graph500-parameter graphs produce plenty of self loops by default (the
  // diagonal is heavy under [a; d] skew).
  EXPECT_GT(loops, 0u);

  config.exclude_self_loops = true;
  VectorSink without;
  GenerateStats stats = GenerateToSink(config, &without);
  for (const auto& [u, dsts] : without.scopes()) {
    for (VertexId v : dsts) EXPECT_NE(v, u);
  }
  // Mass is preserved: excluded loops are re-drawn, not dropped.
  double expected = static_cast<double>(config.NumEdges());
  EXPECT_NEAR(static_cast<double>(stats.num_edges), expected,
              0.03 * expected + 6 * std::sqrt(expected));
}

TEST(AvsGeneratorTest, ZeroDegreeScopesAreSkipped) {
  TrillionGConfig config = SmallConfig(12);
  config.edge_factor = 1;  // sparse: most scopes empty at tail
  VectorSink sink;
  GenerateStats stats = GenerateToSink(config, &sink);
  EXPECT_LT(stats.num_scopes, config.NumVertices());
  for (const auto& [u, dsts] : sink.scopes()) {
    (void)u;
    EXPECT_FALSE(dsts.empty());
  }
}

// --- The table kernel (core/prefix_tables.h + rng/lane_rng.h). ---

TEST(PrefixTablesTest, InversionMatchesCdfVectorExhaustively) {
  // Ground truth: for every source u and destination v at small scales, the
  // midpoint of v's normalized CDF interval must invert to exactly v. This
  // checks every boundary, every group width (scale 9 -> widths 8 + 1), and
  // the per-scope row-mass product against the materialized CDF.
  for (int scale : {1, 3, 8, 9}) {
    NoiseVector noise(SeedMatrix::Graph500(), scale);
    AvsPrefixTables tables(noise);
    const VertexId n = VertexId{1} << scale;
    for (VertexId u = 0; u < n; ++u) {
      CdfVector cdf(noise, u);
      const AvsPrefixTables::ScopeView view = tables.ViewFor(u);
      EXPECT_NEAR(view.total, cdf.Total(), 1e-12 * cdf.Total());
      for (VertexId v = 0; v < n; ++v) {
        const double mid = (cdf[v] + cdf[v + 1]) / (2.0 * cdf.Total());
        EXPECT_EQ(tables.Invert(view, mid), v)
            << "scale=" << scale << " u=" << u << " v=" << v;
      }
      // Extremes of the deviate range stay in range.
      EXPECT_EQ(tables.Invert(view, 0.0), 0u);
      EXPECT_LT(tables.Invert(view, 0x1.fffffffffffffp-1), n);
    }
  }
}

TEST(PrefixTablesTest, InversionMatchesCdfVectorUnderNoise) {
  // NSKG noise gives every level a different matrix, exercising the
  // per-level table entries (not just a repeated base matrix).
  rng::Rng noise_rng(7, 99);
  NoiseVector noise(SeedMatrix::Graph500(), 7, 0.05, &noise_rng);
  AvsPrefixTables tables(noise);
  const VertexId n = VertexId{1} << 7;
  for (VertexId u = 0; u < n; u += 13) {
    CdfVector cdf(noise, u);
    const AvsPrefixTables::ScopeView view = tables.ViewFor(u);
    for (VertexId v = 0; v < n; ++v) {
      const double mid = (cdf[v] + cdf[v + 1]) / (2.0 * cdf.Total());
      EXPECT_EQ(tables.Invert(view, mid), v) << "u=" << u << " v=" << v;
    }
  }
}

TEST(AvsGeneratorTest, TableKernelIsEngagedByDefault) {
  TrillionGConfig config = SmallConfig(10);
  CountingSink sink;
  GenerateStats stats = GenerateToSink(config, &sink);
  EXPECT_EQ(stats.table_scopes, stats.num_scopes);
  EXPECT_EQ(stats.table_edges, stats.num_edges);
  EXPECT_EQ(stats.rec_vec_builds, 0u);

  // Any ablation toggle (or the explicit kill switch) reverts to the
  // descent kernel.
  config.determiner.use_prefix_tables = false;
  CountingSink sink2;
  GenerateStats descent = GenerateToSink(config, &sink2);
  EXPECT_EQ(descent.table_scopes, 0u);
  EXPECT_GT(descent.rec_vec_builds, 0u);
}

TEST(AvsGeneratorTest, TableKernelMatchesTargetEdgeCount) {
  TrillionGConfig config = SmallConfig(12);
  CountingSink sink;
  GenerateStats stats = GenerateToSink(config, &sink);
  double expected = static_cast<double>(config.NumEdges());
  EXPECT_NEAR(static_cast<double>(stats.num_edges), expected,
              5 * std::sqrt(expected));
}

TEST(AvsGeneratorTest, SimdOnAndOffProduceIdenticalGraphs) {
  // The hard determinism guarantee of the SIMD kernel: forcing the portable
  // fills must reproduce the exact same graph, including under the
  // multi-worker work-stealing scheduler.
  for (int workers : {1, 4}) {
    TrillionGConfig config = SmallConfig(11);
    config.num_workers = workers;
    config.chunks_per_worker = 8;

    rng::SetLaneForcePortable(false);
    std::uint64_t hash_simd = HashedGraph(config);
    rng::SetLaneForcePortable(true);
    std::uint64_t hash_portable = HashedGraph(config);
    rng::SetLaneForcePortable(false);

    EXPECT_EQ(hash_simd, hash_portable) << "workers=" << workers;
  }
}

TEST(ScopeDedupTest, DenseWipesAreLazy) {
  // Regression for the eager bits_.assign(words, 0): a dense Reset must
  // wipe only the words the previous dense scope dirtied, and sparse
  // Resets must not touch the bitmap at all.
  ScopeDedup dedup;
  const VertexId universe = 1 << 16;  // 1024 bitmap words
  const std::uint64_t dense_degree = universe / 16;

  dedup.Reset(dense_degree, universe);
  ASSERT_TRUE(dedup.dense());
  EXPECT_EQ(dedup.wiped_words(), 0u);  // first Reset: fresh words are zero
  EXPECT_TRUE(dedup.Insert(0));
  EXPECT_TRUE(dedup.Insert(1));    // same word as 0
  EXPECT_TRUE(dedup.Insert(640));  // second word
  EXPECT_FALSE(dedup.Insert(640));

  // Sparse scopes in between leave the bitmap (and the wipe count) alone.
  dedup.Reset(4, universe);
  ASSERT_FALSE(dedup.dense());
  EXPECT_TRUE(dedup.Insert(123));
  EXPECT_EQ(dedup.wiped_words(), 0u);

  // The next dense Reset wipes exactly the two dirtied words — not all
  // 1024 — and the bitmap is clean again.
  dedup.Reset(dense_degree, universe);
  ASSERT_TRUE(dedup.dense());
  EXPECT_EQ(dedup.wiped_words(), 2u);
  EXPECT_TRUE(dedup.Insert(0));
  EXPECT_TRUE(dedup.Insert(640));

  dedup.Reset(dense_degree, universe);
  EXPECT_EQ(dedup.wiped_words(), 4u);
}

TEST(AvsGeneratorTest, DedupWipeWorkIsProportionalToEdges) {
  // End-to-end regression: total wiped bitmap words across a run must be
  // bounded by the edges inserted into dense scopes, never by
  // scopes * |V|/64 (the eager-clearing cost).
  TrillionGConfig config = SmallConfig(10);
  config.edge_factor = 32;  // push some scopes over the dense threshold
  const std::uint64_t before =
      obs::GetCounter("kernel.dedup_wiped_words")->value();
  CountingSink sink;
  GenerateStats stats = GenerateToSink(config, &sink);
  const std::uint64_t wiped =
      obs::GetCounter("kernel.dedup_wiped_words")->value() - before;
  EXPECT_LE(wiped, stats.num_edges);
}

}  // namespace
}  // namespace tg::core
