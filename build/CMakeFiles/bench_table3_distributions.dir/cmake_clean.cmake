file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_distributions.dir/bench/bench_table3_distributions.cc.o"
  "CMakeFiles/bench_table3_distributions.dir/bench/bench_table3_distributions.cc.o.d"
  "bench/bench_table3_distributions"
  "bench/bench_table3_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
