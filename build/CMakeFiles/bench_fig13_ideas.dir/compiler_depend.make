# Empty compiler generated dependencies file for bench_fig13_ideas.
# This may be replaced when dependencies are built.
