file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_ideas.dir/bench/bench_fig13_ideas.cc.o"
  "CMakeFiles/bench_fig13_ideas.dir/bench/bench_fig13_ideas.cc.o.d"
  "bench/bench_fig13_ideas"
  "bench/bench_fig13_ideas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_ideas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
