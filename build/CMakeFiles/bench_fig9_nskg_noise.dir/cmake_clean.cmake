file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_nskg_noise.dir/bench/bench_fig9_nskg_noise.cc.o"
  "CMakeFiles/bench_fig9_nskg_noise.dir/bench/bench_fig9_nskg_noise.cc.o.d"
  "bench/bench_fig9_nskg_noise"
  "bench/bench_fig9_nskg_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_nskg_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
