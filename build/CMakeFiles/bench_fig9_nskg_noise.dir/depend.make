# Empty dependencies file for bench_fig9_nskg_noise.
# This may be replaced when dependencies are built.
