# Empty compiler generated dependencies file for bench_fig11b_distributed.
# This may be replaced when dependencies are built.
