file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11b_distributed.dir/bench/bench_fig11b_distributed.cc.o"
  "CMakeFiles/bench_fig11b_distributed.dir/bench/bench_fig11b_distributed.cc.o.d"
  "bench/bench_fig11b_distributed"
  "bench/bench_fig11b_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
