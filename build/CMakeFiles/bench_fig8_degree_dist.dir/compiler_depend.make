# Empty compiler generated dependencies file for bench_fig8_degree_dist.
# This may be replaced when dependencies are built.
