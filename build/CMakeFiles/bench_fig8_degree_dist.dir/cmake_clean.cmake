file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_degree_dist.dir/bench/bench_fig8_degree_dist.cc.o"
  "CMakeFiles/bench_fig8_degree_dist.dir/bench/bench_fig8_degree_dist.cc.o.d"
  "bench/bench_fig8_degree_dist"
  "bench/bench_fig8_degree_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_degree_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
