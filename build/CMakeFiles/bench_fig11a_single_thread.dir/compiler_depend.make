# Empty compiler generated dependencies file for bench_fig11a_single_thread.
# This may be replaced when dependencies are built.
