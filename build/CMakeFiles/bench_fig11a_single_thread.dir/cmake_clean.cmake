file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a_single_thread.dir/bench/bench_fig11a_single_thread.cc.o"
  "CMakeFiles/bench_fig11a_single_thread.dir/bench/bench_fig11a_single_thread.cc.o.d"
  "bench/bench_fig11a_single_thread"
  "bench/bench_fig11a_single_thread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_single_thread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
