# Empty dependencies file for bench_fig14_graph500.
# This may be replaced when dependencies are built.
