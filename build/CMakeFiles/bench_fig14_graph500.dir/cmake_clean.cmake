file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_graph500.dir/bench/bench_fig14_graph500.cc.o"
  "CMakeFiles/bench_fig14_graph500.dir/bench/bench_fig14_graph500.cc.o.d"
  "bench/bench_fig14_graph500"
  "bench/bench_fig14_graph500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_graph500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
