file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_recvec.dir/bench/bench_table2_recvec.cc.o"
  "CMakeFiles/bench_table2_recvec.dir/bench/bench_table2_recvec.cc.o.d"
  "bench/bench_table2_recvec"
  "bench/bench_table2_recvec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_recvec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
