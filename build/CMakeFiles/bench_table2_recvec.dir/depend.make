# Empty dependencies file for bench_table2_recvec.
# This may be replaced when dependencies are built.
