file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_erv.dir/bench/bench_fig10_erv.cc.o"
  "CMakeFiles/bench_fig10_erv.dir/bench/bench_fig10_erv.cc.o.d"
  "bench/bench_fig10_erv"
  "bench/bench_fig10_erv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_erv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
