# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/numeric_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/recvec_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/partitioner_test[1]_include.cmake")
include("/root/repo/build/tests/format_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/erv_test[1]_include.cmake")
include("/root/repo/build/tests/gmark_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/recvec_n_test[1]_include.cmake")
include("/root/repo/build/tests/convert_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
