file(REMOVE_RECURSE
  "CMakeFiles/recvec_n_test.dir/recvec_n_test.cc.o"
  "CMakeFiles/recvec_n_test.dir/recvec_n_test.cc.o.d"
  "recvec_n_test"
  "recvec_n_test.pdb"
  "recvec_n_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recvec_n_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
