# Empty compiler generated dependencies file for recvec_n_test.
# This may be replaced when dependencies are built.
