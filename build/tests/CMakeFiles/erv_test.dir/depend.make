# Empty dependencies file for erv_test.
# This may be replaced when dependencies are built.
