file(REMOVE_RECURSE
  "CMakeFiles/erv_test.dir/erv_test.cc.o"
  "CMakeFiles/erv_test.dir/erv_test.cc.o.d"
  "erv_test"
  "erv_test.pdb"
  "erv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
