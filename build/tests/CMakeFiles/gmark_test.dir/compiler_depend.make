# Empty compiler generated dependencies file for gmark_test.
# This may be replaced when dependencies are built.
