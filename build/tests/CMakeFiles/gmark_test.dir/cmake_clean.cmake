file(REMOVE_RECURSE
  "CMakeFiles/gmark_test.dir/gmark_test.cc.o"
  "CMakeFiles/gmark_test.dir/gmark_test.cc.o.d"
  "gmark_test"
  "gmark_test.pdb"
  "gmark_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
