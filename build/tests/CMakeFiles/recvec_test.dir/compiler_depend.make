# Empty compiler generated dependencies file for recvec_test.
# This may be replaced when dependencies are built.
