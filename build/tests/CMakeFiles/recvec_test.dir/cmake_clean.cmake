file(REMOVE_RECURSE
  "CMakeFiles/recvec_test.dir/recvec_test.cc.o"
  "CMakeFiles/recvec_test.dir/recvec_test.cc.o.d"
  "recvec_test"
  "recvec_test.pdb"
  "recvec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recvec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
