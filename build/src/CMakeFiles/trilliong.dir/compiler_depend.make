# Empty compiler generated dependencies file for trilliong.
# This may be replaced when dependencies are built.
