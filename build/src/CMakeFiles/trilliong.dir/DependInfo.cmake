
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/degree_dist.cc" "src/CMakeFiles/trilliong.dir/analysis/degree_dist.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/analysis/degree_dist.cc.o.d"
  "/root/repo/src/analysis/graph_stats.cc" "src/CMakeFiles/trilliong.dir/analysis/graph_stats.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/analysis/graph_stats.cc.o.d"
  "/root/repo/src/baseline/graph500.cc" "src/CMakeFiles/trilliong.dir/baseline/graph500.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/baseline/graph500.cc.o.d"
  "/root/repo/src/baseline/kronecker.cc" "src/CMakeFiles/trilliong.dir/baseline/kronecker.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/baseline/kronecker.cc.o.d"
  "/root/repo/src/baseline/rmat.cc" "src/CMakeFiles/trilliong.dir/baseline/rmat.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/baseline/rmat.cc.o.d"
  "/root/repo/src/baseline/simple.cc" "src/CMakeFiles/trilliong.dir/baseline/simple.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/baseline/simple.cc.o.d"
  "/root/repo/src/baseline/teg.cc" "src/CMakeFiles/trilliong.dir/baseline/teg.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/baseline/teg.cc.o.d"
  "/root/repo/src/baseline/wesp.cc" "src/CMakeFiles/trilliong.dir/baseline/wesp.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/baseline/wesp.cc.o.d"
  "/root/repo/src/cluster/trilliong_cluster.cc" "src/CMakeFiles/trilliong.dir/cluster/trilliong_cluster.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/cluster/trilliong_cluster.cc.o.d"
  "/root/repo/src/core/partitioner.cc" "src/CMakeFiles/trilliong.dir/core/partitioner.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/core/partitioner.cc.o.d"
  "/root/repo/src/core/trilliong.cc" "src/CMakeFiles/trilliong.dir/core/trilliong.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/core/trilliong.cc.o.d"
  "/root/repo/src/erv/erv_generator.cc" "src/CMakeFiles/trilliong.dir/erv/erv_generator.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/erv/erv_generator.cc.o.d"
  "/root/repo/src/format/adj6.cc" "src/CMakeFiles/trilliong.dir/format/adj6.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/format/adj6.cc.o.d"
  "/root/repo/src/format/convert.cc" "src/CMakeFiles/trilliong.dir/format/convert.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/format/convert.cc.o.d"
  "/root/repo/src/format/csr6.cc" "src/CMakeFiles/trilliong.dir/format/csr6.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/format/csr6.cc.o.d"
  "/root/repo/src/format/tsv.cc" "src/CMakeFiles/trilliong.dir/format/tsv.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/format/tsv.cc.o.d"
  "/root/repo/src/gmark/graph_config.cc" "src/CMakeFiles/trilliong.dir/gmark/graph_config.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/gmark/graph_config.cc.o.d"
  "/root/repo/src/gmark/schema_generator.cc" "src/CMakeFiles/trilliong.dir/gmark/schema_generator.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/gmark/schema_generator.cc.o.d"
  "/root/repo/src/model/seed_matrix.cc" "src/CMakeFiles/trilliong.dir/model/seed_matrix.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/model/seed_matrix.cc.o.d"
  "/root/repo/src/numeric/double_double.cc" "src/CMakeFiles/trilliong.dir/numeric/double_double.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/numeric/double_double.cc.o.d"
  "/root/repo/src/query/bfs.cc" "src/CMakeFiles/trilliong.dir/query/bfs.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/query/bfs.cc.o.d"
  "/root/repo/src/query/csr_graph.cc" "src/CMakeFiles/trilliong.dir/query/csr_graph.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/query/csr_graph.cc.o.d"
  "/root/repo/src/query/pagerank.cc" "src/CMakeFiles/trilliong.dir/query/pagerank.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/query/pagerank.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/trilliong.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/util/flags.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/trilliong.dir/util/status.cc.o" "gcc" "src/CMakeFiles/trilliong.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
