file(REMOVE_RECURSE
  "libtrilliong.a"
)
