file(REMOVE_RECURSE
  "CMakeFiles/graph500_pipeline.dir/graph500_pipeline.cpp.o"
  "CMakeFiles/graph500_pipeline.dir/graph500_pipeline.cpp.o.d"
  "graph500_pipeline"
  "graph500_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph500_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
