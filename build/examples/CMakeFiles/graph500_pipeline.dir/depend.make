# Empty dependencies file for graph500_pipeline.
# This may be replaced when dependencies are built.
