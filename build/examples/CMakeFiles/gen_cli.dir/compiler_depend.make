# Empty compiler generated dependencies file for gen_cli.
# This may be replaced when dependencies are built.
