file(REMOVE_RECURSE
  "CMakeFiles/gen_cli.dir/gen_cli.cpp.o"
  "CMakeFiles/gen_cli.dir/gen_cli.cpp.o.d"
  "gen_cli"
  "gen_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
