file(REMOVE_RECURSE
  "CMakeFiles/degree_analysis.dir/degree_analysis.cpp.o"
  "CMakeFiles/degree_analysis.dir/degree_analysis.cpp.o.d"
  "degree_analysis"
  "degree_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degree_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
