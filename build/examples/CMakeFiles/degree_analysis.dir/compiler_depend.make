# Empty compiler generated dependencies file for degree_analysis.
# This may be replaced when dependencies are built.
