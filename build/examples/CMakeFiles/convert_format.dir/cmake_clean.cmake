file(REMOVE_RECURSE
  "CMakeFiles/convert_format.dir/convert_format.cpp.o"
  "CMakeFiles/convert_format.dir/convert_format.cpp.o.d"
  "convert_format"
  "convert_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convert_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
