# Empty dependencies file for convert_format.
# This may be replaced when dependencies are built.
