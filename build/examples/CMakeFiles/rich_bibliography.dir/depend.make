# Empty dependencies file for rich_bibliography.
# This may be replaced when dependencies are built.
