file(REMOVE_RECURSE
  "CMakeFiles/rich_bibliography.dir/rich_bibliography.cpp.o"
  "CMakeFiles/rich_bibliography.dir/rich_bibliography.cpp.o.d"
  "rich_bibliography"
  "rich_bibliography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rich_bibliography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
