// bench_check: the perf-regression gate on RunReports. Diffs a fresh bench
// report against a committed BENCH_*.json baseline with per-metric relative
// tolerances (obs/report_diff.h) and exits non-zero on any regression, so
// CI can fail a PR that slows a figure bench or drifts its deterministic
// counters.
//
//   bench_check --baseline bench/baselines/BENCH_fig11b.json
//               --current  /tmp/bench_fig11b.json
//               [--tol net.simulated_seconds=0.05,cluster.shuffled_bytes=0]
//               [--skip sort.merge_passes,...]
//               [--default_gauge_tol 0.5] [--verbose] [--update]
//
// --update rewrites the baseline from the current report (after printing the
// diff) — the maintenance path when a change legitimately moves a metric.
// --list needs only --baseline: it prints every metric the gate would check
// with its resolved tolerance (plus the skipped ones), so the gate's
// coverage is reviewable without running a bench.

#include <cstdio>
#include <string>

#include "obs/report_diff.h"
#include "obs/run_report.h"
#include "storage/file_io.h"
#include "util/flags.h"
#include "util/status.h"

namespace {

tg::Status ReadFile(const std::string& path, std::string* out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return tg::Status::IoError("cannot open: " + path);
  }
  out->clear();
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    out->append(buf, n);
  }
  std::fclose(file);
  return tg::Status::Ok();
}

tg::Status LoadReport(const std::string& path, tg::obs::RunReport* report) {
  std::string text;
  tg::Status s = ReadFile(path, &text);
  if (!s.ok()) return s;
  return tg::obs::RunReport::FromJson(text, report);
}

}  // namespace

int main(int argc, char** argv) {
  tg::FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: %s --baseline PATH --current PATH\n"
        "  [--tol name=frac,...]    per-metric relative tolerance override\n"
        "                           (negative: skip that metric)\n"
        "  [--skip name,...]        metrics to ignore\n"
        "  [--counter_tol frac]     default counter tolerance (default 0)\n"
        "  [--default_gauge_tol f]  compare unlisted gauges at tolerance f\n"
        "                           (default: unlisted gauges are skipped)\n"
        "  [--no_histograms]        skip histogram count/sum comparison\n"
        "  [--verbose]              print every checked metric, not only FAILs\n"
        "  [--update]               rewrite the baseline from --current\n"
        "  [--list]                 print the gated metrics and tolerances for\n"
        "                           --baseline (no --current needed), exit 0\n"
        "exit status: 0 ok, 1 regression, 2 usage/io error\n",
        flags.program_name().c_str());
    return 0;
  }

  const bool list_only = flags.GetBool("list", false);
  const std::string baseline_path = flags.GetString("baseline", "");
  const std::string current_path = flags.GetString("current", "");
  if (baseline_path.empty() || (current_path.empty() && !list_only)) {
    std::fprintf(stderr, "--baseline and --current are required (--help)\n");
    return 2;
  }

  tg::obs::RunReport baseline;
  tg::Status s = LoadReport(baseline_path, &baseline);
  if (!s.ok()) {
    std::fprintf(stderr, "bench_check: baseline %s: %s\n",
                 baseline_path.c_str(), s.ToString().c_str());
    return 2;
  }

  tg::obs::DiffOptions options = tg::obs::DiffOptions::Defaults();
  options.counter_rel_tol = flags.GetDouble("counter_tol", 0.0);
  if (flags.Has("default_gauge_tol")) {
    options.default_gauge_rel_tol = flags.GetDouble("default_gauge_tol", -1.0);
  }
  if (flags.Has("no_histograms")) options.check_histograms = false;
  for (const std::string& name : flags.GetStringList("skip")) {
    options.skip.push_back(name);  // on top of the default skip list
  }
  for (const std::string& spec : flags.GetStringList("tol")) {
    std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "bench_check: bad --tol item '%s' (want name=frac)\n",
                   spec.c_str());
      return 2;
    }
    options.tolerances[spec.substr(0, eq)] =
        std::strtod(spec.c_str() + eq + 1, nullptr);
  }

  if (list_only) {
    int checked = 0;
    int skipped = 0;
    std::printf("%-52s %-10s %9s  %s\n", "metric", "kind", "tol", "gate");
    for (const tg::obs::GatedMetric& metric :
         tg::obs::ListGatedMetrics(baseline, options)) {
      std::printf("%-52s %-10s %9.2g  %s\n", metric.name.c_str(),
                  metric.kind.c_str(), metric.rel_tol,
                  metric.skipped ? "skipped" : "checked");
      (metric.skipped ? skipped : checked) += 1;
    }
    std::printf("%d metric(s) gated, %d skipped (baseline %s)\n", checked,
                skipped, baseline_path.c_str());
    return 0;
  }

  tg::obs::RunReport current;
  s = LoadReport(current_path, &current);
  if (!s.ok()) {
    std::fprintf(stderr, "bench_check: current %s: %s\n", current_path.c_str(),
                 s.ToString().c_str());
    return 2;
  }

  tg::obs::DiffResult result =
      tg::obs::DiffReports(baseline, current, options);
  std::fputs(result.ToString(flags.GetBool("verbose", false)).c_str(),
             stdout);

  if (flags.GetBool("update", false)) {
    s = current.WriteJsonFile(baseline_path);
    if (!s.ok()) {
      std::fprintf(stderr, "bench_check: cannot update %s: %s\n",
                   baseline_path.c_str(), s.ToString().c_str());
      return 2;
    }
    std::printf("baseline %s updated from %s\n", baseline_path.c_str(),
                current_path.c_str());
    return 0;
  }

  if (!result.ok()) {
    std::fprintf(stderr,
                 "bench_check: REGRESSION vs %s (re-run with --update after "
                 "an intentional change)\n",
                 baseline_path.c_str());
    return 1;
  }
  std::printf("bench_check: OK vs %s\n", baseline_path.c_str());
  return 0;
}
