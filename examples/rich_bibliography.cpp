// rich_bibliography: schema-driven rich graph generation with the extended
// recursive vector (ERV) model — the gMark bibliographical example of
// Section 6 / Figure 7. Writes typed edges as "src predicate dst" lines and
// prints the out-/in-degree summaries of the author relation (Figure 10).
//
//   ./rich_bibliography --nodes=100000 --edges=1000000 --out=/tmp/bib.tsv
//   ./rich_bibliography --config=my_schema.cfg --out=/tmp/rich.tsv

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "analysis/degree_dist.h"
#include "gmark/graph_config.h"
#include "gmark/schema_generator.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  tg::FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: %s [--nodes=N] [--edges=M] [--config=FILE] [--out=FILE] "
        "[--seed=N]\n",
        flags.program_name().c_str());
    return 0;
  }

  const auto nodes = static_cast<std::uint64_t>(flags.GetInt("nodes", 100000));
  const auto edges =
      static_cast<std::uint64_t>(flags.GetInt("edges", 1000000));

  tg::gmark::GraphConfig config;
  if (flags.Has("config")) {
    std::ifstream in(flags.GetString("config", ""));
    if (!in) {
      std::fprintf(stderr, "cannot open config file\n");
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    tg::Status status = tg::gmark::GraphConfig::Parse(buffer.str(), &config);
    if (!status.ok()) {
      std::fprintf(stderr, "config error: %s\n", status.ToString().c_str());
      return 1;
    }
  } else {
    config = tg::gmark::GraphConfig::Bibliography(nodes, edges);
  }

  std::printf("graph configuration:\n%s\n", config.ToString().c_str());

  std::FILE* out = nullptr;
  if (flags.Has("out")) {
    out = std::fopen(flags.GetString("out", "").c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open output file\n");
      return 1;
    }
  }

  // Degree tracking for the author relation (schema entry 0 in the built-in
  // bibliography): out-degrees over sources, in-degrees over targets.
  auto ranges = config.NodeRanges();
  std::vector<std::uint32_t> author_out, author_in;
  int author_pred = config.PredicateIndex("author");
  int src_type = -1, dst_type = -1;
  if (author_pred >= 0) {
    for (const auto& entry : config.schema) {
      if (entry.predicate == "author") {
        src_type = config.NodeTypeIndex(entry.source_type);
        dst_type = config.NodeTypeIndex(entry.target_type);
      }
    }
    if (src_type >= 0) author_out.assign(ranges[src_type].size(), 0);
    if (dst_type >= 0) author_in.assign(ranges[dst_type].size(), 0);
  }

  tg::gmark::RichStats stats = tg::gmark::GenerateRichGraph(
      config, static_cast<std::uint64_t>(flags.GetInt("seed", 42)),
      [&](const tg::gmark::RichEdge& e) {
        if (out != nullptr) {
          std::fprintf(out, "%llu\t%s\t%llu\n",
                       static_cast<unsigned long long>(e.src),
                       config.predicates[e.predicate].name.c_str(),
                       static_cast<unsigned long long>(e.dst));
        }
        if (static_cast<int>(e.predicate) == author_pred && src_type >= 0) {
          ++author_out[e.src - ranges[src_type].begin];
          ++author_in[e.dst - ranges[dst_type].begin];
        }
      });
  if (out != nullptr) std::fclose(out);

  std::printf("generated %llu typed edges:\n",
              static_cast<unsigned long long>(stats.num_edges));
  for (std::size_t p = 0; p < config.predicates.size(); ++p) {
    std::printf("  %-14s %llu\n", config.predicates[p].name.c_str(),
                static_cast<unsigned long long>(stats.edges_per_predicate[p]));
  }

  if (author_pred >= 0 && !author_out.empty()) {
    auto in_hist = tg::analysis::DegreeHistogram::FromDegrees(author_in);
    std::printf(
        "\nauthor relation (Figure 10): out Zipf class slope %.3f (expected "
        "~-1.662), in mean %.2f stddev %.2f (Gaussian)\n",
        tg::analysis::PopcountClassSlope(author_out), in_hist.MeanDegree(),
        in_hist.StddevDegree());
  }
  return 0;
}
