// graph500_pipeline: the end-to-end workload the Graph500 benchmark (and
// Appendix D of the paper) describes — generate a noisy-SKG graph with
// TrillionG into CSR6 shards, load the CSR, run BFS from sampled roots,
// validate the parent trees, and report TEPS.
//
//   ./graph500_pipeline --scale=18 --edge_factor=16 --workers=4 --roots=8

#include <cstdio>
#include <vector>

#include "analysis/graph_stats.h"
#include "core/trilliong.h"
#include "format/csr6.h"
#include "query/bfs.h"
#include "query/components.h"
#include "query/csr_graph.h"
#include "rng/random.h"
#include "storage/temp_dir.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  tg::FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: %s [--scale=N] [--edge_factor=N] [--workers=N] [--roots=N] "
        "[--seed=N]\n",
        flags.program_name().c_str());
    return 0;
  }

  tg::core::TrillionGConfig config;
  config.scale = static_cast<int>(flags.GetInt("scale", 18));
  config.edge_factor =
      static_cast<std::uint64_t>(flags.GetInt("edge_factor", 16));
  config.num_workers = static_cast<int>(flags.GetInt("workers", 4));
  config.noise = 0.1;  // Graph500 generates noisy SKG (Figure 9(c))
  config.rng_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const int num_roots = static_cast<int>(flags.GetInt("roots", 8));

  // --- Kernel 0: generation into CSR6 shards. ---
  tg::storage::TempDir temp_dir("g500pipe");
  std::vector<std::string> shards(config.num_workers);
  tg::Stopwatch watch;
  tg::core::GenerateStats gen_stats = tg::core::Generate(
      config,
      [&](int worker, tg::VertexId lo,
          tg::VertexId hi) -> std::unique_ptr<tg::core::ScopeSink> {
        shards[worker] = temp_dir.File("shard" + std::to_string(worker) +
                                       ".csr6");
        return std::make_unique<tg::format::Csr6Writer>(shards[worker], lo,
                                                        hi);
      });
  std::printf("generation: %llu edges in %.2f s (%.2f Medges/s)\n",
              static_cast<unsigned long long>(gen_stats.num_edges),
              watch.ElapsedSeconds(),
              gen_stats.num_edges / watch.ElapsedSeconds() / 1e6);

  // --- Kernel 1: graph construction (load CSR shards). ---
  watch.Restart();
  tg::query::CsrGraph graph;
  tg::Status status = tg::query::CsrGraph::FromCsr6Shards(shards, &graph);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  tg::query::CsrGraph reverse = graph.Transposed();
  std::printf("construction: loaded %llu vertices / %llu edges in %.2f s "
              "(%.1f MiB in memory)\n",
              static_cast<unsigned long long>(graph.num_vertices()),
              static_cast<unsigned long long>(graph.num_edges()),
              watch.ElapsedSeconds(),
              static_cast<double>(graph.MemoryBytes() + reverse.MemoryBytes()) /
                  1048576.0);

  // Structural report.
  tg::analysis::GraphStats stats = tg::analysis::ComputeGraphStats(graph);
  std::printf("structure: %s\n", stats.ToString().c_str());
  tg::query::DisjointSets components(graph.num_vertices());
  for (tg::VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (tg::VertexId v : graph.OutNeighbors(u)) components.Union(u, v);
  }
  std::printf("components: %llu (largest %llu vertices)\n",
              static_cast<unsigned long long>(components.NumComponents()),
              static_cast<unsigned long long>(components.LargestComponent()));

  // --- Kernel 2: BFS from sampled roots with validation. ---
  tg::rng::Rng root_rng(config.rng_seed, /*stream=*/77);
  double total_teps = 0;
  int measured = 0;
  for (int i = 0; i < num_roots; ++i) {
    tg::VertexId root = root_rng.NextBounded(graph.num_vertices());
    if (graph.OutDegree(root) == 0 && reverse.OutDegree(root) == 0) {
      continue;  // Graph500 skips isolated roots
    }
    watch.Restart();
    tg::query::BfsResult bfs = tg::query::Bfs(graph, root, &reverse);
    double seconds = watch.ElapsedSeconds();
    tg::Status valid = tg::query::ValidateBfsTree(graph, root, bfs, &reverse);
    std::printf(
        "bfs root=%-10llu visited=%llu depth=%d %.1f MTEPS validation=%s\n",
        static_cast<unsigned long long>(root),
        static_cast<unsigned long long>(bfs.vertices_visited), bfs.max_depth,
        tg::query::Teps(bfs, seconds) / 1e6, valid.ToString().c_str());
    if (!valid.ok()) return 1;
    total_teps += tg::query::Teps(bfs, seconds);
    ++measured;
  }
  if (measured > 0) {
    std::printf("harmonic-ish mean: %.1f MTEPS over %d roots\n",
                total_teps / measured / 1e6, measured);
  }
  return 0;
}
