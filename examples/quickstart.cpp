// Quickstart: generate a Graph500-parameter RMAT-like graph with TrillionG's
// recursive vector model and print summary statistics.
//
//   ./quickstart --scale=20 --edge_factor=16 --workers=4 --noise=0.0
//
// This example uses a counting sink (no output file); see gen_cli.cpp for
// writing TSV / ADJ6 / CSR6, and rich_bibliography.cpp for schema-driven
// rich graphs.

#include <cstdio>

#include "core/trilliong.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  tg::FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: %s [--scale=N] [--edge_factor=N] [--workers=N] [--noise=X]\n",
        flags.program_name().c_str());
    return 0;
  }

  tg::core::TrillionGConfig config;
  config.scale = static_cast<int>(flags.GetInt("scale", 20));
  config.edge_factor =
      static_cast<std::uint64_t>(flags.GetInt("edge_factor", 16));
  config.num_workers = static_cast<int>(flags.GetInt("workers", 4));
  config.noise = flags.GetDouble("noise", 0.0);
  config.rng_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  std::printf("TrillionG quickstart: scale=%d |V|=%llu |E|=%llu workers=%d\n",
              config.scale,
              static_cast<unsigned long long>(config.NumVertices()),
              static_cast<unsigned long long>(config.NumEdges()),
              config.num_workers);

  // One counting sink per worker; edges are discarded after being counted
  // (see gen_cli.cpp for writing real output files).
  tg::core::GenerateStats stats = tg::core::Generate(
      config,
      [&](int worker, tg::VertexId lo,
          tg::VertexId hi) -> std::unique_ptr<tg::core::ScopeSink> {
        std::printf("  worker %d owns vertex range [%llu, %llu)\n", worker,
                    static_cast<unsigned long long>(lo),
                    static_cast<unsigned long long>(hi));
        return std::make_unique<tg::core::CountingSink>();
      });

  std::printf("generated %llu edges across %llu non-empty scopes\n",
              static_cast<unsigned long long>(stats.num_edges),
              static_cast<unsigned long long>(stats.num_scopes));
  std::printf("max degree (d_max): %llu\n",
              static_cast<unsigned long long>(stats.max_degree));
  std::printf("peak per-scope working set: %llu bytes (the O(d_max) term)\n",
              static_cast<unsigned long long>(stats.peak_scope_bytes));
  std::printf("partition: %.3f s, generation: %.3f s (%.1f Medges/s)\n",
              stats.partition_seconds, stats.generate_seconds,
              static_cast<double>(stats.num_edges) / stats.generate_seconds /
                  1e6);
  return 0;
}
