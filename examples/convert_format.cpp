// convert_format: offline conversions between the graph formats of
// Section 5, plus CSR6 shard merging.
//
//   ./convert_format --mode=tsv2adj6  --in=g.tsv  --out=g.adj6
//   ./convert_format --mode=adj62tsv  --in=g.adj6 --out=g.tsv
//   ./convert_format --mode=adj62csr6 --in=g.adj6 --out=g.csr6 --vertices=N
//   ./convert_format --mode=mergecsr6 --out=g.csr6 shard0.csr6 shard1.csr6 ...

#include <cstdio>

#include "format/convert.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  tg::FlagParser flags(argc, argv);
  const std::string mode = flags.GetString("mode", "");
  const std::string in = flags.GetString("in", "");
  const std::string out = flags.GetString("out", "");
  if (flags.Has("help") || mode.empty() || out.empty()) {
    std::printf(
        "usage: %s --mode=tsv2adj6|adj62tsv|adj62csr6|mergecsr6 "
        "[--in=FILE] --out=FILE [--vertices=N] [shards...]\n",
        flags.program_name().c_str());
    return flags.Has("help") ? 0 : 1;
  }

  tg::Status status;
  if (mode == "tsv2adj6") {
    status = tg::format::TsvToAdj6(in, out);
  } else if (mode == "adj62tsv") {
    status = tg::format::Adj6ToTsv(in, out);
  } else if (mode == "adj62csr6") {
    status = tg::format::Adj6ToCsr6(
        in, out, static_cast<tg::VertexId>(flags.GetInt("vertices", 1 << 20)));
  } else if (mode == "mergecsr6") {
    status = tg::format::MergeCsr6Shards(flags.positional(), out);
  } else {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 1;
  }

  if (!status.ok()) {
    std::fprintf(stderr, "conversion failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
