// degree_analysis: reads a generated graph (TSV, ADJ6 or CSR6) and prints
// its degree-distribution report — log-binned series, Zipf rank slope,
// oscillation score — the checks used throughout Section 7.2.
//
//   ./degree_analysis --in=/tmp/graph.w0.adj6 --format=adj6 --vertices=1048576
//   ./degree_analysis --in=/tmp/graph.w0.tsv --format=tsv --vertices=1048576

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/degree_dist.h"
#include "format/adj6.h"
#include "format/csr6.h"
#include "format/tsv.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  tg::FlagParser flags(argc, argv);
  if (flags.Has("help") || !flags.Has("in")) {
    std::printf(
        "usage: %s --in=FILE --format=tsv|adj6|csr6 --vertices=N\n"
        "Prints out-/in-degree distribution reports for the graph.\n",
        flags.program_name().c_str());
    return flags.Has("help") ? 0 : 1;
  }

  const std::string path = flags.GetString("in", "");
  const std::string format = flags.GetString("format", "adj6");
  const auto num_vertices =
      static_cast<std::uint64_t>(flags.GetInt("vertices", 1 << 20));

  std::vector<std::uint32_t> out_degrees(num_vertices, 0);
  std::vector<std::uint32_t> in_degrees(num_vertices, 0);
  std::uint64_t num_edges = 0;

  auto add_edge = [&](tg::VertexId u, tg::VertexId v) {
    if (u < num_vertices) ++out_degrees[u];
    if (v < num_vertices) ++in_degrees[v];
    ++num_edges;
  };

  if (format == "tsv") {
    tg::format::TsvReader reader(path);
    tg::Edge e;
    while (reader.Next(&e)) add_edge(e.src, e.dst);
    if (!reader.status().ok()) {
      std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
      return 1;
    }
  } else if (format == "adj6") {
    tg::Status status = tg::format::Adj6Reader::ForEach(
        path, [&](tg::VertexId u, const std::vector<tg::VertexId>& adj) {
          for (tg::VertexId v : adj) add_edge(u, v);
        });
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  } else if (format == "csr6") {
    tg::format::Csr6Reader reader(path);
    if (!reader.status().ok()) {
      std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
      return 1;
    }
    for (tg::VertexId u = reader.lo(); u < reader.hi(); ++u) {
      for (tg::VertexId v : reader.Neighbors(u)) add_edge(u, v);
    }
  } else {
    std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
    return 1;
  }

  auto report = [](const char* name,
                   const tg::analysis::DegreeHistogram& hist) {
    std::printf("\n== %s degree distribution ==\n", name);
    std::printf("vertices with degree > 0: %llu, edges: %llu, max: %llu\n",
                static_cast<unsigned long long>(hist.NumVertices()),
                static_cast<unsigned long long>(hist.NumEdges()),
                static_cast<unsigned long long>(hist.MaxDegree()));
    std::printf("Zipf rank slope: %.3f  log-log slope: %.3f  oscillation: %.3f\n",
                hist.ZipfRankSlope(), hist.LogLogSlope(),
                hist.OscillationScore());
    std::printf("log-binned series (degree\\tvertices):\n%s",
                hist.ToSeriesString(5.0).c_str());
  };

  std::printf("read %llu edges from %s\n",
              static_cast<unsigned long long>(num_edges), path.c_str());
  report("out", tg::analysis::DegreeHistogram::FromDegrees(out_degrees));
  report("in", tg::analysis::DegreeHistogram::FromDegrees(in_degrees));
  return 0;
}
