// serve_cli: the tg::serve daemon — generation as a service.
//
//   ./serve_cli --port=8080 --worker_threads=8 --max_concurrent=2
//
// POST /generate with a JSON request (docs/SERVING.md) streams the graph
// back in the requested format; every other path serves the live
// observability plane (/metrics, /report.json, /events, /healthz, ...).
// SIGINT/SIGTERM drain gracefully: new requests get 503, in-flight ones run
// to completion, a final run report is written, and the process exits 0.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/run_report.h"
#include "serve/daemon.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true); }

void InstallStopSignalHandlers() {
  struct sigaction action {};
  action.sa_handler = HandleStopSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  tg::FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: %s [--port=N] [--bind=ADDR] [--worker_threads=N]\n"
        "       [--max_concurrent=N] [--max_queued=N]\n"
        "       [--per_tenant_inflight=N] [--max_scale=N]\n"
        "       [--cache_bytes=SIZE] [--mem_budget=SIZE]\n"
        "       [--work_dir=DIR] [--metrics_json=PATH]\n"
        "POST /generate a JSON request (fields and examples in\n"
        "docs/SERVING.md) and the graph streams back in the requested\n"
        "format; all other paths are the live observability plane\n"
        "(docs/OBSERVABILITY.md): /metrics, /healthz, /report.json,\n"
        "/events, /trace.\n"
        "--port=0 (the default) binds an ephemeral port, printed at\n"
        "startup. --cache_bytes caps the in-memory whole-graph cache\n"
        "(accepts human sizes: 512m, 2g; 0 disables caching).\n"
        "--mem_budget caps each request's logical working set; a request\n"
        "exceeding it fails alone, the daemon stays up.\n"
        "--max_scale bounds accepted requests (defense against a request\n"
        "that would generate for hours).\n"
        "SIGINT/SIGTERM drain: in-flight requests finish, new ones get\n"
        "503, a final run report is written when --metrics_json is given,\n"
        "and the daemon exits 0.\n",
        flags.program_name().c_str());
    return 0;
  }

  tg::serve::DaemonOptions options;
  options.port = static_cast<int>(flags.GetInt("port", 0));
  options.bind_address = flags.GetString("bind", "127.0.0.1");
  options.worker_threads = static_cast<int>(flags.GetInt("worker_threads", 4));
  options.max_concurrent = static_cast<int>(flags.GetInt("max_concurrent", 2));
  options.max_queued = static_cast<int>(flags.GetInt("max_queued", 8));
  options.per_tenant_inflight =
      static_cast<int>(flags.GetInt("per_tenant_inflight", 2));
  options.limits.max_scale = static_cast<int>(flags.GetInt("max_scale", 26));
  options.cache_bytes = flags.GetBytes("cache_bytes", 256ULL << 20);
  options.request_mem_budget_bytes = flags.GetBytes("mem_budget", 0);
  options.work_dir = flags.GetString("work_dir", "");
  options.meta["tool"] = "serve_cli";
  options.meta["worker_threads"] = std::to_string(options.worker_threads);
  options.meta["max_concurrent"] = std::to_string(options.max_concurrent);

  const std::string metrics_json = flags.GetString("metrics_json", "");
  tg::obs::SetEnabled(true);
  tg::obs::PreregisterCanonicalMetrics();

  InstallStopSignalHandlers();

  tg::Stopwatch watch;
  tg::serve::ServeDaemon daemon;
  tg::Status started = daemon.Start(options);
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start daemon: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("tg::serve on http://%s:%d/ (POST /generate; /metrics)\n",
              options.bind_address.c_str(), daemon.port());
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  const int inflight = daemon.inflight();
  std::printf("draining: %d request(s) in flight\n", inflight);
  std::fflush(stdout);
  daemon.Drain();

  if (!metrics_json.empty()) {
    tg::obs::RunReport report =
        tg::obs::RunReport::Collect(tg::obs::Registry::Global());
    report.meta["tool"] = "serve_cli";
    report.meta["wall_seconds"] = std::to_string(watch.ElapsedSeconds());
    tg::Status status = report.WriteJsonFile(metrics_json);
    if (!status.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", metrics_json.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("metrics report written to %s\n", metrics_json.c_str());
  }
  std::printf("serve_cli: drained and stopped\n");
  return 0;
}
