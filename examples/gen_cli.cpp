// gen_cli: the full-featured TrillionG command-line generator. Writes a
// graph in TSV, ADJ6 or CSR6 format, one shard per worker, with optional
// NSKG noise and AVS-I orientation — the example closest to what the paper's
// released tool does.
//
//   ./gen_cli --scale=22 --edge_factor=16 --format=adj6 --out=/tmp/graph
//             --workers=8 --noise=0.1 --precision=dd
//
// Output files: <out>.w<k>.<ext> for worker k.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "core/trilliong.h"
#include "format/adj6.h"
#include "format/csr6.h"
#include "format/tsv.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/sampler.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace {

std::unique_ptr<tg::core::ScopeSink> MakeSink(const std::string& format,
                                              const std::string& path,
                                              tg::VertexId lo,
                                              tg::VertexId hi,
                                              bool transposed) {
  if (format == "tsv") {
    return std::make_unique<tg::format::TsvWriter>(path + ".tsv", transposed);
  }
  if (format == "adj6") {
    return std::make_unique<tg::format::Adj6Writer>(path + ".adj6");
  }
  if (format == "csr6") {
    return std::make_unique<tg::format::Csr6Writer>(path + ".csr6", lo, hi);
  }
  std::fprintf(stderr, "unknown format '%s' (tsv|adj6|csr6)\n",
               format.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  tg::FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: %s --out=PREFIX [--scale=N] [--edge_factor=N] "
        "[--format=tsv|adj6|csr6] [--workers=N] [--noise=X] [--seed=N]\n"
        "       [--precision=double|dd] [--direction=out|in]\n"
        "       [--chunks_per_worker=N]\n"
        "       [--a=0.57 --b=0.19 --c=0.19 --d=0.05]\n"
        "       [--metrics_json=PATH] [--metrics_table]\n"
        "       [--trace_json=PATH] [--progress] [--sample_ms=N]\n"
        "       [--mem_budget=SIZE] [--oom_report=PATH]\n"
        "--mem_budget caps the generator's logical working set (accepts\n"
        "human sizes: 512m, 2g, 64k, plain bytes); exceeding it aborts the\n"
        "run with an OomError whose forensics (machine, tag, per-tag byte\n"
        "breakdown, span stack) are printed — and written as standalone\n"
        "JSON when --oom_report is given.\n"
        "--metrics_json writes a structured tg::obs run report (JSON; see\n"
        "docs/OBSERVABILITY.md); --metrics_table prints it human-readable.\n"
        "--trace_json writes a Chrome Trace Event file (open in Perfetto or\n"
        "chrome://tracing); --progress prints a live edges/sec + ETA line;\n"
        "--sample_ms sets the sampling interval (default 20) for the time\n"
        "series embedded in the run report.\n"
        "--chunks_per_worker sets the work-stealing granularity (default "
        "16;\n1 = static one-range-per-worker schedule; output is "
        "bit-identical\nfor any value; TG_CHUNKS_PER_WORKER in the "
        "environment overrides\nthe default).\n",
        flags.program_name().c_str());
    return 0;
  }

  tg::core::TrillionGConfig config;
  config.scale = static_cast<int>(flags.GetInt("scale", 20));
  config.edge_factor =
      static_cast<std::uint64_t>(flags.GetInt("edge_factor", 16));
  config.num_workers = static_cast<int>(flags.GetInt("workers", 4));
  config.chunks_per_worker = static_cast<int>(
      flags.GetInt("chunks_per_worker", tg::core::ChunksPerWorkerFromEnv()));
  config.noise = flags.GetDouble("noise", 0.0);
  config.rng_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.seed = tg::model::SeedMatrix(
      flags.GetDouble("a", 0.57), flags.GetDouble("b", 0.19),
      flags.GetDouble("c", 0.19), flags.GetDouble("d", 0.05));
  if (flags.GetString("precision", "double") == "dd") {
    config.precision = tg::core::Precision::kDoubleDouble;
  }
  const bool transposed = flags.GetString("direction", "out") == "in";
  if (transposed) config.direction = tg::core::Direction::kIn;

  const std::string format = flags.GetString("format", "adj6");
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "--out=PREFIX is required (try --help)\n");
    return 1;
  }

  // A budget of 0 tracks peaks without capping; any other value turns the
  // budget into a hard cap that reproduces the paper's O.O.M behaviour.
  const std::uint64_t mem_budget_bytes = flags.GetBytes("mem_budget", 0);
  tg::MemoryBudget budget(mem_budget_bytes);
  config.budget = &budget;
  const std::string oom_report_path = flags.GetString("oom_report", "");

  const std::string metrics_json = flags.GetString("metrics_json", "");
  const std::string trace_json = flags.GetString("trace_json", "");
  const bool metrics_table = flags.GetBool("metrics_table", false);
  const bool progress = flags.GetBool("progress", false);
  const bool want_sampler = progress || flags.Has("sample_ms");
  const bool want_metrics = !metrics_json.empty() || metrics_table ||
                            !trace_json.empty() || want_sampler;
  if (want_metrics) {
    tg::obs::SetEnabled(true);
    tg::obs::PreregisterCanonicalMetrics();
  }
  if (!trace_json.empty()) tg::obs::SetTraceEnabled(true);

  std::unique_ptr<tg::obs::Sampler> sampler;
  if (want_sampler || !metrics_json.empty()) {
    tg::obs::SamplerOptions sampler_options;
    sampler_options.interval_ms =
        static_cast<int>(flags.GetInt("sample_ms", 20));
    sampler_options.print_progress = progress;
    sampler_options.progress_target_edges = config.NumEdges();
    sampler = std::make_unique<tg::obs::Sampler>(sampler_options);
    sampler->Start();
  }

  std::printf("generating scale %d (|V|=%llu, |E|=%llu) as %s into %s.*\n",
              config.scale,
              static_cast<unsigned long long>(config.NumVertices()),
              static_cast<unsigned long long>(config.NumEdges()),
              format.c_str(), out.c_str());

  tg::Stopwatch watch;
  bool oomed = false;
  tg::core::GenerateStats stats;
  try {
    stats = tg::core::Generate(
        config,
        [&](int worker, tg::VertexId lo, tg::VertexId hi) {
          return MakeSink(format, out + ".w" + std::to_string(worker), lo, hi,
                          transposed);
        });
  } catch (const tg::OomError& e) {
    oomed = true;
    if (want_metrics) tg::obs::RecordOom(e.report());
    std::fprintf(stderr, "O.O.M after %.2f s:\n%s", watch.ElapsedSeconds(),
                 e.report().ToString().c_str());
    if (!oom_report_path.empty()) {
      tg::Status status =
          tg::obs::WriteOomReportFile(e.report(), oom_report_path);
      if (status.ok()) {
        std::printf("oom report written to %s\n", oom_report_path.c_str());
      } else {
        std::fprintf(stderr, "failed to write %s: %s\n",
                     oom_report_path.c_str(), status.ToString().c_str());
      }
    }
  }

  if (!oomed) {
    std::printf(
        "done: %llu edges, %llu scopes, d_max=%llu in %.2f s "
        "(partition %.3f s, generate %.3f s)\n",
        static_cast<unsigned long long>(stats.num_edges),
        static_cast<unsigned long long>(stats.num_scopes),
        static_cast<unsigned long long>(stats.max_degree),
        watch.ElapsedSeconds(), stats.partition_seconds,
        stats.generate_seconds);
    std::printf("peak per-scope working set: %llu bytes\n",
                static_cast<unsigned long long>(stats.peak_scope_bytes));
    if (config.num_workers > 1) {
      std::printf(
          "scheduler: %llu chunks, %llu steals, cpu imbalance %.2f "
          "(max/mean)\n",
          static_cast<unsigned long long>(stats.sched_chunks),
          static_cast<unsigned long long>(stats.sched_steals),
          stats.sched_imbalance);
    }
  }

  if (sampler != nullptr) sampler->Stop();
  if (!trace_json.empty()) {
    tg::Status status = tg::obs::WriteChromeTraceFile(trace_json);
    if (!status.ok()) {
      std::fprintf(stderr, "failed to write trace %s: %s\n",
                   trace_json.c_str(), status.ToString().c_str());
      return 1;
    }
    std::printf("trace written to %s (open in https://ui.perfetto.dev)\n",
                trace_json.c_str());
  }

  if (want_metrics) {
    tg::obs::RunReport report =
        tg::obs::RunReport::Collect(tg::obs::Registry::Global());
    report.meta["tool"] = "gen_cli";
    report.meta["scale"] = std::to_string(config.scale);
    report.meta["edge_factor"] = std::to_string(config.edge_factor);
    report.meta["workers"] = std::to_string(config.num_workers);
    report.meta["chunks_per_worker"] =
        std::to_string(config.chunks_per_worker);
    report.meta["noise"] = std::to_string(config.noise);
    report.meta["seed"] = std::to_string(config.rng_seed);
    report.meta["format"] = format;
    report.meta["precision"] =
        config.precision == tg::core::Precision::kDoubleDouble ? "dd"
                                                               : "double";
    report.meta["direction"] = transposed ? "in" : "out";
    report.meta["out"] = out;
    report.meta["wall_seconds"] = std::to_string(watch.ElapsedSeconds());
    if (sampler != nullptr) sampler->ExportTo(&report);
    if (metrics_table) std::fputs(report.ToTable().c_str(), stdout);
    if (!metrics_json.empty()) {
      tg::Status status = report.WriteJsonFile(metrics_json);
      if (!status.ok()) {
        std::fprintf(stderr, "failed to write %s: %s\n", metrics_json.c_str(),
                     status.ToString().c_str());
        return 1;
      }
      std::printf("metrics report written to %s\n", metrics_json.c_str());
    }
  }
  return oomed ? 1 : 0;
}
