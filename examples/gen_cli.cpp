// gen_cli: the full-featured TrillionG command-line generator. Writes a
// graph in TSV, ADJ6 or CSR6 format, one shard per worker, with optional
// NSKG noise and AVS-I orientation — the example closest to what the paper's
// released tool does.
//
//   ./gen_cli --scale=22 --edge_factor=16 --format=adj6 --out=/tmp/graph
//             --workers=8 --noise=0.1 --precision=dd
//
// Output files: <out>.w<k>.<ext> for worker k.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "core/trilliong.h"
#include "fault/fault_injector.h"
#include "fault/journal.h"
#include "format/adj6.h"
#include "format/csr6.h"
#include "format/tsv.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/sampler.h"
#include "obs/serve/admin_server.h"
#include "obs/serve/prometheus.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "prof/folded.h"
#include "prof/profiler.h"
#include "rng/lane_rng.h"
#include "storage/async_writer.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace {

std::string ShardPath(const std::string& out, int worker,
                      const std::string& format) {
  return out + ".w" + std::to_string(worker) + "." + format;
}

/// SIGINT/SIGTERM request graceful cancellation: the flag feeds
/// TrillionGConfig::cancel_flag, generation stops at the next chunk
/// boundary, and main still writes reports and (when journaling) leaves a
/// resumable journal behind.
std::atomic<bool> g_interrupted{false};

void HandleStopSignal(int) { g_interrupted.store(true); }

void InstallStopSignalHandlers() {
  struct sigaction action {};
  action.sa_handler = HandleStopSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

std::unique_ptr<tg::core::ScopeSink> MakeSink(const std::string& format,
                                              const std::string& path,
                                              tg::VertexId lo,
                                              tg::VertexId hi,
                                              bool transposed) {
  if (format == "tsv") {
    return std::make_unique<tg::format::TsvWriter>(path, transposed);
  }
  if (format == "adj6") {
    return std::make_unique<tg::format::Adj6Writer>(path);
  }
  if (format == "csr6") {
    return std::make_unique<tg::format::Csr6Writer>(path, lo, hi);
  }
  std::fprintf(stderr, "unknown format '%s' (tsv|adj6|csr6)\n",
               format.c_str());
  std::exit(1);
}

/// Resume-constructing counterpart of MakeSink: restores a writer from the
/// sink-state token the journal recorded for this shard.
std::unique_ptr<tg::core::ScopeSink> MakeResumedSink(
    const std::string& format, const std::string& path, tg::VertexId lo,
    tg::VertexId hi, bool transposed, const std::string& state) {
  tg::core::ResumeFrom from{state};
  if (format == "tsv") {
    return std::make_unique<tg::format::TsvWriter>(path, transposed, from);
  }
  if (format == "adj6") {
    return std::make_unique<tg::format::Adj6Writer>(path, from);
  }
  return std::make_unique<tg::format::Csr6Writer>(path, lo, hi, from);
}

}  // namespace

int main(int argc, char** argv) {
  tg::FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: %s --out=PREFIX [--scale=N] [--edge_factor=N] "
        "[--format=tsv|adj6|csr6] [--workers=N] [--noise=X] [--seed=N]\n"
        "       [--precision=double|dd] [--direction=out|in]\n"
        "       [--chunks_per_worker=N] [--io=sync|async[,uring|,nouring]]\n"
        "       [--portable_kernel] [--no_prefix_tables]\n"
        "       [--a=0.57 --b=0.19 --c=0.19 --d=0.05]\n"
        "       [--metrics_json=PATH] [--metrics_prom=PATH] "
        "[--metrics_table]\n"
        "       [--trace_json=PATH] [--progress] [--sample_ms=N]\n"
        "       [--sample_interval_ms=N] [--admin_port=N]\n"
        "       [--profile=PATH] [--profile_hz=N]\n"
        "       [--mem_budget=SIZE] [--oom_report=PATH]\n"
        "       [--fault_plan=PLAN] [--journal] [--resume]\n"
        "--fault_plan injects deterministic faults into the simulated\n"
        "cluster (grammar in docs/FAULT_TOLERANCE.md, e.g.\n"
        "'m1:crash@chunk=3' or 'seed=7,*:crash@p=0.05'); TG_FAULT_PLAN in\n"
        "the environment is honored when the flag is absent.\n"
        "--journal checkpoints every committed chunk to <out>.journal so an\n"
        "interrupted run can be continued; --resume (implies --journal)\n"
        "loads that journal, truncates the output shards back to the last\n"
        "committed chunk, and generates only what is missing — the resumed\n"
        "files are byte-identical to an uninterrupted run.\n"
        "--mem_budget caps the generator's logical working set (accepts\n"
        "human sizes: 512m, 2g, 64k, plain bytes); exceeding it aborts the\n"
        "run with an OomError whose forensics (machine, tag, per-tag byte\n"
        "breakdown, span stack) are printed — and written as standalone\n"
        "JSON when --oom_report is given.\n"
        "--metrics_json writes a structured tg::obs run report (JSON; see\n"
        "docs/OBSERVABILITY.md); --metrics_prom writes the same registry in\n"
        "Prometheus text exposition format; --metrics_table prints it\n"
        "human-readable.\n"
        "--trace_json writes a Chrome Trace Event file (open in Perfetto or\n"
        "chrome://tracing); --progress prints a live edges/sec + ETA line;\n"
        "--sample_ms / --sample_interval_ms set the sampling interval\n"
        "(default 20 ms; TG_SAMPLE_INTERVAL_MS in the environment is the\n"
        "fallback) for the time series embedded in the run report.\n"
        "--admin_port starts the live admin server (docs/OBSERVABILITY.md\n"
        "\"Live endpoints\": /metrics, /healthz, /report.json, /events,\n"
        "/trace) on 127.0.0.1:<N> for the duration of the run; 0 picks an\n"
        "ephemeral port, printed at startup. The server only reads\n"
        "observability state: output files are bit-identical with it on or\n"
        "off.\n"
        "--profile samples the run with the in-process profiler (tg::prof,\n"
        "docs/OBSERVABILITY.md \"Profiling\") and writes flamegraph.pl-\n"
        "compatible folded stacks to PATH; --profile_hz sets the sampling\n"
        "rate (default 99 Hz of process CPU time). TG_PROFILE /\n"
        "TG_PROFILE_HZ in the environment are honored when the flags are\n"
        "absent. The profiler only reads program state: output files are\n"
        "bit-identical with it on or off.\n"
        "--io selects the writer transport (docs/PERFORMANCE.md \"The I/O\n"
        "path\"): 'sync' is the blocking stdio writer, 'async' (the default)\n"
        "double-buffers flushes onto a writer thread, with io_uring\n"
        "submission when the kernel supports it ('async,nouring' forces the\n"
        "pwrite fallback). Output files are bit-identical in every mode;\n"
        "TG_IO in the environment is honored when the flag is absent.\n"
        "--chunks_per_worker sets the work-stealing granularity (default "
        "16;\n1 = static one-range-per-worker schedule; output is "
        "bit-identical\nfor any value; TG_CHUNKS_PER_WORKER in the "
        "environment overrides\nthe default).\n"
        "--portable_kernel forces the scalar edge-kernel fills even in an\n"
        "AVX2 build (output is bit-identical; TG_PORTABLE_KERNEL in the\n"
        "environment does the same); --no_prefix_tables selects the legacy\n"
        "per-edge descent kernel (different RNG stream — a different, still\n"
        "deterministic graph; see docs/PERFORMANCE.md).\n",
        flags.program_name().c_str());
    return 0;
  }

  tg::core::TrillionGConfig config;
  config.scale = static_cast<int>(flags.GetInt("scale", 20));
  config.edge_factor =
      static_cast<std::uint64_t>(flags.GetInt("edge_factor", 16));
  config.num_workers = static_cast<int>(flags.GetInt("workers", 4));
  config.chunks_per_worker = static_cast<int>(
      flags.GetInt("chunks_per_worker", tg::core::ChunksPerWorkerFromEnv()));
  config.noise = flags.GetDouble("noise", 0.0);
  config.rng_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.seed = tg::model::SeedMatrix(
      flags.GetDouble("a", 0.57), flags.GetDouble("b", 0.19),
      flags.GetDouble("c", 0.19), flags.GetDouble("d", 0.05));
  if (flags.GetString("precision", "double") == "dd") {
    config.precision = tg::core::Precision::kDoubleDouble;
  }
  const bool transposed = flags.GetString("direction", "out") == "in";
  if (transposed) config.direction = tg::core::Direction::kIn;
  // Kernel knobs (docs/PERFORMANCE.md): --portable_kernel forces the
  // scalar-unrolled lane fills at runtime (one binary proves SIMD-on and
  // SIMD-off bit-identical); --no_prefix_tables falls back to the per-edge
  // descent kernel.
  if (flags.GetBool("portable_kernel",
                    std::getenv("TG_PORTABLE_KERNEL") != nullptr)) {
    tg::rng::SetLaneForcePortable(true);
  }
  config.determiner.use_prefix_tables =
      !flags.GetBool("no_prefix_tables", false);

  // Writer transport (docs/PERFORMANCE.md): the flag overrides TG_IO, which
  // GlobalIoConfig() already consulted; every writer constructed below goes
  // through MakeFileWriter() and sees this choice.
  if (flags.Has("io")) {
    tg::storage::IoConfig io_config;
    const std::string io_spec = flags.GetString("io", "async");
    tg::Status io_status = tg::storage::ParseIoSpec(io_spec, &io_config);
    if (!io_status.ok()) {
      std::fprintf(stderr, "bad --io: %s\n", io_status.ToString().c_str());
      return 1;
    }
    tg::storage::GlobalIoConfig() = io_config;
  }

  const std::string format = flags.GetString("format", "adj6");
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "--out=PREFIX is required (try --help)\n");
    return 1;
  }
  if (format != "tsv" && format != "adj6" && format != "csr6") {
    std::fprintf(stderr, "unknown format '%s' (tsv|adj6|csr6)\n",
                 format.c_str());
    return 1;
  }

  // --- fault injection / crash recovery / resume (see src/fault/). ---
  const std::string fault_plan_str = flags.GetString("fault_plan", "");
  const bool resume = flags.GetBool("resume", false);
  const bool journaling = flags.GetBool("journal", false) || resume;
  std::unique_ptr<tg::fault::FaultInjector> injector;
  if (!fault_plan_str.empty()) {
    tg::fault::FaultPlan plan;
    tg::Status plan_status = tg::fault::FaultPlan::Parse(fault_plan_str, &plan);
    if (!plan_status.ok()) {
      std::fprintf(stderr, "bad --fault_plan: %s\n",
                   plan_status.ToString().c_str());
      return 1;
    }
    injector = std::make_unique<tg::fault::FaultInjector>(std::move(plan),
                                                          config.num_workers);
    config.fault_injector = injector.get();
  }
  // When the flag is absent, tg::core::Generate arms TG_FAULT_PLAN itself.

  const std::string journal_path = out + ".journal";
  const std::uint64_t fingerprint =
      tg::fault::ConfigFingerprint(config, format);
  tg::fault::JournalState journal_state;
  if (resume) {
    tg::Status load = tg::fault::LoadJournal(journal_path, &journal_state);
    if (!load.ok()) {
      std::fprintf(stderr, "--resume: %s\n", load.ToString().c_str());
      return 1;
    }
    if (journal_state.done) {
      std::printf("%s records a completed run; nothing to resume\n",
                  journal_path.c_str());
      return 0;
    }
    if (journal_state.fingerprint != fingerprint) {
      std::fprintf(stderr,
                   "--resume: %s was written by a run with different "
                   "parameters; refusing to splice outputs\n",
                   journal_path.c_str());
      return 1;
    }
    config.resume_next_seq.assign(
        static_cast<std::size_t>(config.num_workers), 0);
    for (const auto& [range, range_state] : journal_state.ranges) {
      if (range >= 0 && range < config.num_workers) {
        config.resume_next_seq[range] = range_state.next_seq;
      }
    }
  }

  std::unique_ptr<tg::fault::Journal> journal;
  if (journaling) {
    tg::Status js =
        resume ? tg::fault::Journal::Reopen(journal_path, &journal)
               : tg::fault::Journal::Start(journal_path, fingerprint, &journal);
    if (!js.ok()) {
      std::fprintf(stderr, "cannot open journal: %s\n", js.ToString().c_str());
      return 1;
    }
    config.chunk_commit_hook = [&journal](const tg::core::Chunk& chunk,
                                          tg::core::ScopeSink* sink) {
      auto* resumable = dynamic_cast<tg::core::ResumableSink*>(sink);
      if (resumable == nullptr) return;
      std::string token;
      // A failed checkpoint (e.g. injected I/O failure) writes no record:
      // the journal never claims more than the shard durably holds.
      if (!resumable->CommitState(&token).ok()) return;
      tg::Status append = journal->AppendCommit(chunk.range, chunk.seq, token);
      if (!append.ok()) {
        std::fprintf(stderr, "journal append failed: %s\n",
                     append.ToString().c_str());
      }
    };
  }

  // A budget of 0 tracks peaks without capping; any other value turns the
  // budget into a hard cap that reproduces the paper's O.O.M behaviour.
  const std::uint64_t mem_budget_bytes = flags.GetBytes("mem_budget", 0);
  tg::MemoryBudget budget(mem_budget_bytes);
  config.budget = &budget;
  const std::string oom_report_path = flags.GetString("oom_report", "");

  // Profiling (docs/OBSERVABILITY.md "Profiling"): flag first, TG_PROFILE /
  // TG_PROFILE_HZ as the env fallback so benches and CI can arm it without
  // touching command lines.
  std::string profile_path = flags.GetString("profile", "");
  if (profile_path.empty()) {
    const char* env_profile = std::getenv("TG_PROFILE");
    if (env_profile != nullptr && env_profile[0] != '\0') {
      profile_path = env_profile;
    }
  }
  int profile_hz = 99;
  if (const char* env_hz = std::getenv("TG_PROFILE_HZ");
      env_hz != nullptr && env_hz[0] != '\0') {
    profile_hz = std::atoi(env_hz);
  }
  profile_hz = static_cast<int>(flags.GetInt("profile_hz", profile_hz));
  const bool profiling = !profile_path.empty();

  const std::string metrics_json = flags.GetString("metrics_json", "");
  const std::string metrics_prom = flags.GetString("metrics_prom", "");
  const std::string trace_json = flags.GetString("trace_json", "");
  const bool metrics_table = flags.GetBool("metrics_table", false);
  const bool progress = flags.GetBool("progress", false);
  const bool want_admin = flags.Has("admin_port");
  const bool want_sampler = progress || flags.Has("sample_ms") ||
                            flags.Has("sample_interval_ms") || want_admin;
  const bool want_metrics = !metrics_json.empty() || !metrics_prom.empty() ||
                            metrics_table || !trace_json.empty() ||
                            want_sampler;
  if (want_metrics) {
    tg::obs::SetEnabled(true);
    tg::obs::PreregisterCanonicalMetrics();
  }
  if (!trace_json.empty()) tg::obs::SetTraceEnabled(true);

  std::unique_ptr<tg::obs::Sampler> sampler;
  if (want_sampler || !metrics_json.empty()) {
    tg::obs::SamplerOptions sampler_options;
    // Interval precedence: --sample_interval_ms, then the legacy
    // --sample_ms spelling, then TG_SAMPLE_INTERVAL_MS, then 20 ms.
    int interval_ms = tg::obs::SamplerIntervalFromEnv(20);
    if (flags.Has("sample_ms")) {
      interval_ms = static_cast<int>(flags.GetInt("sample_ms", interval_ms));
    }
    if (flags.Has("sample_interval_ms")) {
      interval_ms =
          static_cast<int>(flags.GetInt("sample_interval_ms", interval_ms));
    }
    sampler_options.interval_ms = interval_ms;
    sampler_options.print_progress = progress;
    sampler_options.progress_target_edges = config.NumEdges();
    if (resume && !config.resume_next_seq.empty()) {
      // Chunks the journal already committed count as done work at t=0, so
      // the progress percentage starts at the true completion fraction and
      // the ETA is not inflated by crediting old work to the cold-start
      // rate. Chunks are equal-mass by construction (BuildChunkQueues),
      // which makes the linear chunk → edge estimate exact in expectation.
      std::uint64_t committed_chunks = 0;
      for (std::uint32_t next_seq : config.resume_next_seq) {
        committed_chunks += next_seq;
      }
      const std::uint64_t total_chunks =
          static_cast<std::uint64_t>(config.num_workers) *
          static_cast<std::uint64_t>(config.chunks_per_worker);
      if (total_chunks > 0) {
        sampler_options.progress_initial_edges = static_cast<std::uint64_t>(
            static_cast<double>(config.NumEdges()) *
            static_cast<double>(committed_chunks) /
            static_cast<double>(total_chunks));
      }
    }
    sampler = std::make_unique<tg::obs::Sampler>(sampler_options);
    sampler->Start();
  }

  tg::obs::serve::AdminServer admin;
  if (want_admin) {
    tg::obs::serve::AdminOptions admin_options;
    const int admin_port = static_cast<int>(flags.GetInt("admin_port", 0));
    if (admin_port < 0 || admin_port > 65535) {
      std::fprintf(stderr, "--admin_port must be in [0, 65535]\n");
      return 1;
    }
    admin_options.port = admin_port;
    admin_options.meta["tool"] = "gen_cli";
    admin_options.meta["scale"] = std::to_string(config.scale);
    admin_options.meta["edge_factor"] = std::to_string(config.edge_factor);
    admin_options.meta["workers"] = std::to_string(config.num_workers);
    admin_options.meta["seed"] = std::to_string(config.rng_seed);
    admin_options.meta["format"] = format;
    admin_options.meta["io"] =
        tg::storage::IoSpecString(tg::storage::GlobalIoConfig());
    admin_options.meta["out"] = out;
    tg::Status admin_status = admin.Start(admin_options);
    if (!admin_status.ok()) {
      std::fprintf(stderr, "cannot start admin server: %s\n",
                   admin_status.ToString().c_str());
      return 1;
    }
    std::printf("admin server on http://127.0.0.1:%d/ (try /metrics)\n",
                admin.port());
  }

  if (profiling) {
    tg::prof::ProfilerOptions prof_options;
    prof_options.hz = profile_hz;
    tg::Status prof_status = tg::prof::StartProfiler(prof_options);
    if (!prof_status.ok()) {
      std::fprintf(stderr, "cannot start profiler: %s\n",
                   prof_status.ToString().c_str());
      return 1;
    }
    std::printf("profiler sampling at %d Hz -> %s\n", profile_hz,
                profile_path.c_str());
  }

  std::printf("generating scale %d (|V|=%llu, |E|=%llu) as %s into %s.*\n",
              config.scale,
              static_cast<unsigned long long>(config.NumVertices()),
              static_cast<unsigned long long>(config.NumEdges()),
              format.c_str(), out.c_str());

  InstallStopSignalHandlers();
  config.cancel_flag = &g_interrupted;

  tg::Stopwatch watch;
  bool oomed = false;
  bool faulted = false;
  tg::core::GenerateStats stats;
  try {
    stats = tg::core::Generate(
        config,
        [&](int worker, tg::VertexId lo, tg::VertexId hi)
            -> std::unique_ptr<tg::core::ScopeSink> {
          const std::string path = ShardPath(out, worker, format);
          const auto committed = journal_state.ranges.find(worker);
          if (resume && committed != journal_state.ranges.end()) {
            return MakeResumedSink(format, path, lo, hi, transposed,
                                   committed->second.sink_state);
          }
          return MakeSink(format, path, lo, hi, transposed);
        });
  } catch (const tg::fault::FaultError& e) {
    faulted = true;
    std::fprintf(stderr, "unrecoverable fault after %.2f s: %s\n",
                 watch.ElapsedSeconds(), e.what());
  } catch (const tg::OomError& e) {
    oomed = true;
    if (want_metrics) tg::obs::RecordOom(e.report());
    std::fprintf(stderr, "O.O.M after %.2f s:\n%s", watch.ElapsedSeconds(),
                 e.report().ToString().c_str());
    if (!oom_report_path.empty()) {
      tg::Status status =
          tg::obs::WriteOomReportFile(e.report(), oom_report_path);
      if (status.ok()) {
        std::printf("oom report written to %s\n", oom_report_path.c_str());
      } else {
        std::fprintf(stderr, "failed to write %s: %s\n",
                     oom_report_path.c_str(), status.ToString().c_str());
      }
    }
  }

  const bool interrupted = !oomed && !faulted && stats.cancelled;
  const bool completed = !oomed && !faulted && !stats.cancelled;
  if (interrupted) {
    // The shards hold a clean committed prefix — exactly what an
    // uninterrupted run would have written up to the last committed chunk.
    // With --journal the run is resumable; the journal deliberately gets no
    // DONE record.
    std::printf(
        "interrupted after %.2f s: committed prefix retained%s\n",
        watch.ElapsedSeconds(),
        journal != nullptr ? "; continue with --resume" : "");
  }
  if (completed) {
    std::printf(
        "done: %llu edges, %llu scopes, d_max=%llu in %.2f s "
        "(partition %.3f s, generate %.3f s)\n",
        static_cast<unsigned long long>(stats.num_edges),
        static_cast<unsigned long long>(stats.num_scopes),
        static_cast<unsigned long long>(stats.max_degree),
        watch.ElapsedSeconds(), stats.partition_seconds,
        stats.generate_seconds);
    std::printf("peak per-scope working set: %llu bytes\n",
                static_cast<unsigned long long>(stats.peak_scope_bytes));
    if (config.num_workers > 1) {
      std::printf(
          "scheduler: %llu chunks, %llu steals, cpu imbalance %.2f "
          "(max/mean)\n",
          static_cast<unsigned long long>(stats.sched_chunks),
          static_cast<unsigned long long>(stats.sched_steals),
          stats.sched_imbalance);
    }
    if (stats.sched_recovered > 0) {
      std::printf("fault recovery: %llu chunks re-run on surviving machines\n",
                  static_cast<unsigned long long>(stats.sched_recovered));
    }
  }

  if (completed && journal != nullptr) {
    tg::Status done_status = journal->AppendDone();
    if (!done_status.ok()) {
      std::fprintf(stderr, "journal close failed: %s\n",
                   done_status.ToString().c_str());
    } else if (format == "csr6") {
      // The run is durably complete: the degree sidecars kept for resume
      // are dead weight now.
      for (int w = 0; w < config.num_workers; ++w) {
        std::remove(tg::format::Csr6Writer::SidecarPath(
                        ShardPath(out, w, format))
                        .c_str());
      }
    }
  }

  if (sampler != nullptr) sampler->Stop();

  tg::prof::ProfileSnapshot prof_snapshot;
  if (profiling) {
    tg::prof::StopProfiler();
    prof_snapshot = tg::prof::TakeSnapshot();
    tg::Status prof_write =
        tg::prof::WriteFoldedFile(prof_snapshot, profile_path);
    if (!prof_write.ok()) {
      std::fprintf(stderr, "failed to write profile %s: %s\n",
                   profile_path.c_str(), prof_write.ToString().c_str());
      return 1;
    }
    std::printf(
        "profile written to %s (%llu samples, %llu dropped; render with "
        "flamegraph.pl)\n",
        profile_path.c_str(),
        static_cast<unsigned long long>(prof_snapshot.samples),
        static_cast<unsigned long long>(prof_snapshot.dropped));
  }

  if (!trace_json.empty()) {
    tg::Status status = tg::obs::WriteChromeTraceFile(trace_json);
    if (!status.ok()) {
      std::fprintf(stderr, "failed to write trace %s: %s\n",
                   trace_json.c_str(), status.ToString().c_str());
      return 1;
    }
    std::printf("trace written to %s (open in https://ui.perfetto.dev)\n",
                trace_json.c_str());
  }

  if (want_metrics) {
    tg::obs::RunReport report =
        tg::obs::RunReport::Collect(tg::obs::Registry::Global());
    report.meta["tool"] = "gen_cli";
    report.meta["scale"] = std::to_string(config.scale);
    report.meta["edge_factor"] = std::to_string(config.edge_factor);
    report.meta["workers"] = std::to_string(config.num_workers);
    report.meta["chunks_per_worker"] =
        std::to_string(config.chunks_per_worker);
    report.meta["noise"] = std::to_string(config.noise);
    report.meta["seed"] = std::to_string(config.rng_seed);
    report.meta["format"] = format;
    report.meta["io"] = tg::storage::IoSpecString(tg::storage::GlobalIoConfig());
    report.meta["precision"] =
        config.precision == tg::core::Precision::kDoubleDouble ? "dd"
                                                               : "double";
    report.meta["direction"] = transposed ? "in" : "out";
    report.meta["out"] = out;
    report.meta["wall_seconds"] = std::to_string(watch.ElapsedSeconds());
    if (config.fault_injector != nullptr && config.fault_injector->armed()) {
      report.meta["fault_plan"] = config.fault_injector->plan().ToString();
    } else if (!fault_plan_str.empty()) {
      report.meta["fault_plan"] = fault_plan_str;
    }
    if (journaling) report.meta["journal"] = journal_path;
    if (resume) report.meta["resumed"] = "1";
    if (interrupted) report.meta["interrupted"] = "1";
    if (sampler != nullptr) sampler->ExportTo(&report);
    if (profiling) {
      report.meta["profile"] = profile_path;
      tg::prof::ExportTo(prof_snapshot, &report);
    }
    if (metrics_table) std::fputs(report.ToTable().c_str(), stdout);
    if (!metrics_json.empty()) {
      tg::Status status = report.WriteJsonFile(metrics_json);
      if (!status.ok()) {
        std::fprintf(stderr, "failed to write %s: %s\n", metrics_json.c_str(),
                     status.ToString().c_str());
        return 1;
      }
      std::printf("metrics report written to %s\n", metrics_json.c_str());
    }
    if (!metrics_prom.empty()) {
      tg::Status status = tg::obs::serve::WritePrometheusFile(metrics_prom);
      if (!status.ok()) {
        std::fprintf(stderr, "failed to write %s: %s\n", metrics_prom.c_str(),
                     status.ToString().c_str());
        return 1;
      }
      std::printf("prometheus exposition written to %s\n",
                  metrics_prom.c_str());
    }
  }
  admin.Stop();
  if (oomed) return 1;
  return faulted ? 2 : 0;
}
