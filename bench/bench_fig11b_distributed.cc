// Figure 11(b): performance of distributed methods — RMAT/p-mem,
// RMAT/p-disk, TrillionG (TSV), TrillionG (ADJ6) — on the simulated cluster
// across scales, with a per-machine memory budget.
// Expected shape: TrillionG (ADJ6) < TrillionG (TSV) << RMAT/p-disk at every
// scale, with the gap growing with scale; RMAT/p-mem hits O.O.M first (its
// partitions are O(|E|/P) *plus* skew on machine 0).

#include <cstdio>

#include "baseline/wesp.h"
#include "bench_util.h"
#include "cluster/sim_cluster.h"
#include "cluster/trilliong_cluster.h"
#include "core/scheduler.h"
#include "core/trilliong.h"
#include "format/adj6.h"
#include "format/tsv.h"
#include "storage/temp_dir.h"
#include "util/stopwatch.h"

namespace {

// Paper: 10 machines x 6 threads, 32 GB each, scales 24-31. Here: 4
// simulated machines x 1 thread (single-core host), 48 MiB budget, scales
// 15-19.
constexpr int kMachines = 4;
constexpr int kThreads = 1;
constexpr std::uint64_t kDefaultBudgetBytes = 48ULL << 20;
constexpr int kMinScale = 15;
constexpr int kMaxScale = 19;

tg::cluster::SimCluster::Options ClusterOptions() {
  return {kMachines, kThreads,
          tg::bench::BudgetBytesFromEnv(kDefaultBudgetBytes),
          tg::cluster::NetworkModel::OneGigabitEthernet()};
}

}  // namespace

int main() {
  tg::bench::ObsSession obs_session("bench_fig11b");
  tg::bench::Banner(
      "Figure 11(b): distributed methods, 4 machines, scales 15-19, "
      "48 MiB/machine",
      "Park & Kim, SIGMOD'17, Figure 11(b)",
      "TrillionG(ADJ6) < TrillionG(TSV) << RMAT/p-disk; RMAT/p-mem O.O.M "
      "first; gap grows with scale");

  tg::storage::TempDir temp_dir("fig11b");

  std::printf(
      "\n%-7s %12s %12s %14s %14s   (simulated cluster seconds: max "
      "per-worker CPU + wire)\n",
      "scale", "RMAT/p-mem", "RMAT/p-disk", "TrillionG-TSV",
      "TrillionG-ADJ6");

  for (int scale = kMinScale; scale <= kMaxScale; ++scale) {
    std::printf("%-7d", scale);

    // RMAT/p variants: elapsed = generate + shuffle + merge (each the max
    // per-worker time, shuffle including simulated 1 GbE wire time).
    for (bool disk : {false, true}) {
      std::string cell;
      try {
        tg::cluster::SimCluster cluster(ClusterOptions());
        tg::baseline::WespOptions options;
        options.scale = scale;
        options.disk = disk;
        options.temp_dir = temp_dir.path();
        options.sort_buffer_items = 1 << 20;
        tg::baseline::WespStats stats =
            tg::baseline::RunWesp(&cluster, options);
        double elapsed = stats.generate_seconds + stats.shuffle_seconds +
                         stats.merge_seconds;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", elapsed);
        cell = buf;
      } catch (const tg::OomError& e) {
        tg::obs::RecordOom(e.report());
        cell = "O.O.M";
      }
      std::printf(" %12s", cell.c_str());
      std::fflush(stdout);
    }

    // TrillionG: full Figure 6 protocol on the same simulated cluster —
    // combine/gather/repartition/scatter + generation, no edge shuffle.
    for (bool adj6 : {false, true}) {
      std::string cell;
      try {
        tg::cluster::SimCluster cluster(ClusterOptions());
        tg::core::TrillionGConfig config;
        config.scale = scale;
        config.edge_factor = 16;
        config.chunks_per_worker = tg::core::ChunksPerWorkerFromEnv();
        tg::cluster::ClusterGenerateStats stats =
            tg::cluster::GenerateOnCluster(
                &cluster, config,
                [&](int worker, tg::VertexId lo,
                    tg::VertexId hi) -> std::unique_ptr<tg::core::ScopeSink> {
                  std::string base = temp_dir.File(
                      "tg_s" + std::to_string(scale) + "_w" +
                      std::to_string(worker));
                  if (adj6) {
                    return std::make_unique<tg::format::Adj6Writer>(base +
                                                                    ".adj6");
                  }
                  (void)lo;
                  (void)hi;
                  return std::make_unique<tg::format::TsvWriter>(base +
                                                                 ".tsv");
                });
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", stats.TotalSeconds());
        cell = buf;
      } catch (const tg::OomError& e) {
        tg::obs::RecordOom(e.report());
        cell = "O.O.M";
      }
      std::printf(" %14s", cell.c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\nNote: RMAT/p columns include simulated 1 GbE shuffle time; "
      "TrillionG is shuffle-free by construction (AVS partitioning).\n");
  tg::bench::PrintLastOom();
  return 0;
}
