// Figure 13: breakdown of the three key performance ideas of the recursive
// vector model (Section 4.3) — all eight on/off combinations at one scale.
//   Idea#1: reuse the precomputed RecVec per scope
//   Idea#2: reduce recursions (binary-search bit skipping)
//   Idea#3: reduce random value generations (CDF translation)
// Expected shape: Idea#1 is the dominant win (the paper reports >= 3.38x
// alone); with Idea#1 on, Ideas #2 and #3 compound to another ~2x+.

#include <cstdio>

#include "bench_util.h"
#include "core/trilliong.h"
#include "util/stopwatch.h"

int main() {
  tg::bench::ObsSession obs_session("bench_fig13");
  tg::bench::Banner(
      "Figure 13: breakdown of Ideas #1/#2/#3 (Scale 20)",
      "Park & Kim, SIGMOD'17, Figure 13",
      "Idea#1 dominates; #2 and #3 compound once #1 is on");

  constexpr int kScale = 20;
  std::printf("\n%-8s %-8s %-8s %12s %14s\n", "Idea#1", "Idea#2", "Idea#3",
              "seconds", "Medges/sec");

  double baseline_seconds = 0, full_seconds = 0, idea1_only_seconds = 0;
  for (int mask = 0; mask < 8; ++mask) {
    bool idea1 = (mask & 4) != 0;
    bool idea2 = (mask & 2) != 0;
    bool idea3 = (mask & 1) != 0;

    tg::core::TrillionGConfig config;
    config.scale = kScale;
    config.edge_factor = 16;
    config.num_workers = 1;
    config.determiner = {idea1, idea2, idea3};
    // The 8-combination sweep measures the paper's descent kernel; the
    // table kernel (which subsumes all three ideas) gets its own row below.
    config.determiner.use_prefix_tables = false;

    tg::core::CountingSink sink;
    tg::Stopwatch watch;
    tg::core::GenerateStats stats = tg::core::GenerateToSink(config, &sink);
    double seconds = watch.ElapsedSeconds();

    std::printf("%-8s %-8s %-8s %12.3f %14.2f\n", idea1 ? "O" : "X",
                idea2 ? "O" : "X", idea3 ? "O" : "X", seconds,
                stats.num_edges / seconds / 1e6);
    std::fflush(stdout);

    if (mask == 0) baseline_seconds = seconds;
    if (mask == 4) idea1_only_seconds = seconds;
    if (mask == 7) full_seconds = seconds;
  }

  // Beyond the paper: the prefix-table kernel (core/prefix_tables.h)
  // replaces the per-edge descent entirely — shared per-generator tables,
  // batched lane-RNG deviates, no per-scope RecVec at all.
  double table_seconds = 0;
  {
    tg::core::TrillionGConfig config;
    config.scale = kScale;
    config.edge_factor = 16;
    config.num_workers = 1;

    tg::core::CountingSink sink;
    tg::Stopwatch watch;
    tg::core::GenerateStats stats = tg::core::GenerateToSink(config, &sink);
    table_seconds = watch.ElapsedSeconds();
    std::printf("%-26s %12.3f %14.2f\n", "table kernel (default)",
                table_seconds, stats.num_edges / table_seconds / 1e6);
  }

  std::printf(
      "\nspeedups: Idea#1 alone %.2fx (paper: >= 3.38x); all three vs none "
      "%.2fx; Ideas #2+#3 on top of #1: %.2fx (paper: 2.47x); table kernel "
      "vs descent %.2fx\n",
      baseline_seconds / idea1_only_seconds,
      baseline_seconds / full_seconds, idea1_only_seconds / full_seconds,
      full_seconds / table_seconds);
  return 0;
}
