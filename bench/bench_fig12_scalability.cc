// Figure 12: scalability of TrillionG — (a) elapsed time and (b) peak
// memory usage as the graph scale grows (paper: scales 33-38 on ten PCs;
// here scales 17-22 on one box, ADJ6 output, same sweep shape).
// Expected shape: elapsed time strictly proportional to |E| (doubling per
// scale); peak memory grows sublinearly — it tracks d_max, not |E|.

#include <cstdio>

#include "baseline/kronecker.h"
#include "baseline/rmat.h"
#include "bench_util.h"
#include "core/scheduler.h"
#include "core/trilliong.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "format/adj6.h"
#include "storage/temp_dir.h"
#include "util/stopwatch.h"

int main() {
  tg::bench::ObsSession obs_session("bench_fig12");
  tg::bench::Banner(
      "Figure 12: TrillionG scalability, scales 17-22, ADJ6 output",
      "Park & Kim, SIGMOD'17, Figure 12",
      "(a) time ~2x per scale (proportional to |E|); (b) peak memory "
      "sublinear (~d_max)");

  tg::storage::TempDir temp_dir("fig12");

  std::printf("\n%-7s %12s %12s %16s %16s %14s\n", "scale", "edges",
              "seconds", "Medges/sec", "peak scope mem", "output bytes");
  double prev_seconds = 0;
  for (int scale = 17; scale <= 22; ++scale) {
    tg::MemoryBudget budget(0);  // track only
    tg::core::TrillionGConfig config;
    config.scale = scale;
    config.edge_factor = 16;
    config.num_workers = 1;  // single-core host
    config.budget = &budget;

    std::string path = temp_dir.File("s" + std::to_string(scale) + ".adj6");
    tg::Stopwatch watch;
    tg::format::Adj6Writer sink(path);
    tg::core::GenerateStats stats = tg::core::GenerateToSink(config, &sink);
    sink.Finish();
    double seconds = watch.ElapsedSeconds();

    std::printf("%-7d %12llu %12.3f %16.2f %16s %14llu", scale,
                static_cast<unsigned long long>(stats.num_edges), seconds,
                stats.num_edges / seconds / 1e6,
                tg::bench::HumanBytes(stats.peak_scope_bytes).c_str(),
                static_cast<unsigned long long>(sink.bytes_written()));
    if (prev_seconds > 0) {
      std::printf("   (x%.2f vs previous scale)", seconds / prev_seconds);
    }
    std::printf("\n");
    std::fflush(stdout);
    prev_seconds = seconds;
    tg::storage::RemoveFile(path);  // keep the temp dir small
  }

  std::printf(
      "\nverdict: the time column should double per scale while peak scope "
      "memory grows ~1.5-1.7x per scale (d_max = |E| * 0.76^log|V| grows "
      "slower than |E|).\n");

  // --- Work-stealing vs static schedule, 8 workers on a skewed seed.
  // chunks_per_worker=1 is the old static one-range-per-worker schedule;
  // the default chunking lets idle workers steal the realized-skew tail.
  // Output is bit-identical in both rows (scope RNG streams are forked per
  // vertex), so this isolates pure scheduling effects. On an oversubscribed
  // host wall-clock ~= total CPU regardless of schedule, so the column that
  // matters is "sim-par s" — max per-worker CPU, the wall-clock this run
  // would take with one core per worker (same convention as Figure 11(b)).
  {
    const int workers = 8;
    const int steal_chunks = tg::core::ChunksPerWorkerFromEnv();
    std::printf(
        "\nwork-stealing vs static, %d workers, scale 21, skewed seed "
        "(a=0.70)\n",
        workers);
    std::printf("%-22s %10s %10s %12s %10s %10s\n", "schedule", "seconds",
                "sim-par s", "imbalance", "chunks", "steals");
    for (int chunks : {1, steal_chunks}) {
      tg::core::TrillionGConfig config;
      config.scale = 21;
      config.edge_factor = 16;
      config.num_workers = workers;
      config.chunks_per_worker = chunks;
      config.seed = tg::model::SeedMatrix(0.70, 0.15, 0.10, 0.05);

      tg::Stopwatch watch;
      tg::core::GenerateStats stats = tg::core::Generate(
          config,
          [](int, tg::VertexId, tg::VertexId)
              -> std::unique_ptr<tg::core::ScopeSink> {
            return std::make_unique<tg::core::CountingSink>();
          });
      double seconds = watch.ElapsedSeconds();

      char label[64];
      if (chunks == 1) {
        std::snprintf(label, sizeof(label), "static (chunks=1)");
      } else {
        std::snprintf(label, sizeof(label), "stealing (chunks=%d)", chunks);
      }
      std::printf("%-22s %10.3f %10.3f %12.2f %10llu %10llu\n", label,
                  seconds, stats.max_worker_cpu_seconds,
                  stats.sched_imbalance,
                  static_cast<unsigned long long>(stats.sched_chunks),
                  static_cast<unsigned long long>(stats.sched_steals));
      std::fflush(stdout);
    }
    std::printf(
        "verdict: the stealing row should cut sim-par seconds (max "
        "per-worker CPU) and pull the imbalance toward 1.0. The static "
        "row's imbalance is realized skew the expected-mass partition "
        "cannot see: dense head scopes pay ~10x more rejection draws per "
        "edge, so equal expected edges is not equal CPU.\n");
  }

  // --- Crash-recovery overhead: the same generator with two of eight
  // machines killed at their first chunk boundary (docs/FAULT_TOLERANCE.md).
  // Output is bit-identical either way (fault_test proves it byte-for-byte);
  // the price of losing 2/8 machines is their chunks re-running on the six
  // survivors, so simulated parallel time should grow by roughly 8/6 = 1.33x
  // while total work (chunks executed) stays fixed.
  {
    const int workers = 8;
    std::printf("\ncrash-recovery overhead, %d workers, scale 20\n", workers);
    std::printf("%-26s %10s %10s %10s %10s\n", "fault plan", "seconds",
                "sim-par s", "chunks", "recovered");
    double clean_simpar = 0;
    for (const char* plan_str : {"", "m2:crash@chunk=1,m5:crash@chunk=1"}) {
      tg::core::TrillionGConfig config;
      config.scale = 20;
      config.edge_factor = 16;
      config.num_workers = workers;

      std::unique_ptr<tg::fault::FaultInjector> injector;
      if (plan_str[0] != '\0') {
        tg::fault::FaultPlan plan;
        if (!tg::fault::FaultPlan::Parse(plan_str, &plan).ok()) return 1;
        injector =
            std::make_unique<tg::fault::FaultInjector>(std::move(plan), workers);
        config.fault_injector = injector.get();
      }

      tg::Stopwatch watch;
      tg::core::GenerateStats stats = tg::core::Generate(
          config,
          [](int, tg::VertexId, tg::VertexId)
              -> std::unique_ptr<tg::core::ScopeSink> {
            return std::make_unique<tg::core::CountingSink>();
          });
      double seconds = watch.ElapsedSeconds();

      std::printf("%-26s %10.3f %10.3f %10llu %10llu",
                  plan_str[0] == '\0' ? "(none)" : plan_str, seconds,
                  stats.max_worker_cpu_seconds,
                  static_cast<unsigned long long>(stats.sched_chunks),
                  static_cast<unsigned long long>(stats.sched_recovered));
      if (plan_str[0] == '\0') {
        clean_simpar = stats.max_worker_cpu_seconds;
      } else if (clean_simpar > 0) {
        std::printf("   (x%.2f vs fault-free)",
                    stats.max_worker_cpu_seconds / clean_simpar);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
    std::printf(
        "verdict: the chunks column is identical in both rows (every chunk "
        "commits exactly once, crashed or not) and the faulted row's sim-par "
        "seconds should sit near 1.33x fault-free — the dead machines' share "
        "of the work spread over the survivors, not a restart from zero.\n");
  }

  // --- O.O.M crossover: the same sweep under a budget small enough that
  // the O(|E|) methods die inside it (the memory half of Figure 12's story:
  // TrillionG's working set tracks d_max, the baselines' track |E|). Each
  // cell that reads O.O.M recorded forensics; the last one is printed below
  // with its per-tag byte breakdown, so the table doesn't just say *that* a
  // method died but *which allocation tag* killed it.
  {
    const std::uint64_t budget_bytes =
        tg::bench::BudgetBytesFromEnv(24ULL << 20);
    std::printf("\nO.O.M crossover, %s budget (TG_MEM_BUDGET overrides)\n",
                tg::bench::HumanBytes(budget_bytes).c_str());
    std::printf("%-7s %14s %14s %16s\n", "scale", "RMAT-mem",
                "FastKronecker", "TrillionG/seq");
    for (int scale = 14; scale <= 18; ++scale) {
      std::printf("%-7d", scale);
      {
        tg::MemoryBudget budget(budget_bytes);
        tg::baseline::RmatOptions options;
        options.scale = scale;
        options.budget = &budget;
        std::printf(" %14s", tg::bench::TimeOrOom([&] {
                      tg::baseline::RmatMem(options, [](const tg::Edge&) {});
                    }).c_str());
      }
      {
        tg::MemoryBudget budget(budget_bytes);
        tg::baseline::FastKroneckerOptions options;
        options.num_vertices = tg::VertexId{1} << scale;
        options.num_edges = 16ULL << scale;
        options.budget = &budget;
        std::printf(" %14s", tg::bench::TimeOrOom([&] {
                      tg::baseline::FastKronecker(options,
                                                  [](const tg::Edge&) {});
                    }).c_str());
      }
      {
        tg::MemoryBudget budget(budget_bytes);
        tg::core::TrillionGConfig config;
        config.scale = scale;
        config.edge_factor = 16;
        config.num_workers = 1;
        config.budget = &budget;
        std::printf(" %16s", tg::bench::TimeOrOom([&] {
                      tg::core::GenerateStats stats = tg::core::Generate(
                          config,
                          [](int, tg::VertexId, tg::VertexId)
                              -> std::unique_ptr<tg::core::ScopeSink> {
                            return std::make_unique<tg::core::CountingSink>();
                          });
                      (void)stats;
                    }).c_str());
      }
      std::printf("\n");
      std::fflush(stdout);
    }
    std::printf(
        "verdict: the baselines O.O.M on their edge-set tags "
        "(baseline.rmat.edge_set / baseline.kron.edge_set) once |E| "
        "outgrows the budget; TrillionG survives the whole sweep on the "
        "same budget because core.scope_dedup tracks d_max.\n");
    tg::bench::PrintLastOom();
  }
  return 0;
}
