// Writer micro-benchmark behind the I/O fast path (docs/PERFORMANCE.md,
// "The I/O path"). Three measurements:
//   1. transport: the same byte stream through the sync stdio writer and the
//      double-buffered async writer (pwrite fallback and io_uring). The
//      overlap win needs >= 2 cores — producer and writer thread timeshare
//      one CPU otherwise, so the table prints the core count alongside.
//   2. TSV writer: branchless two-digits-at-a-time formatting vs the legacy
//      per-digit divide loop it replaced. Expected >= 1.5x on any host —
//      this leg carries the writer-throughput acceptance bar.
//   3. TSV reader: block parser vs the legacy per-edge fscanf.
// All transports hand identical byte/flush counts to the io.* counters, so
// the BENCH_io.json baseline gates them exactly.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "format/tsv.h"
#include "storage/async_writer.h"
#include "storage/file_io.h"
#include "storage/temp_dir.h"
#include "storage/uring.h"
#include "util/common.h"
#include "util/stopwatch.h"

namespace {

constexpr std::size_t kChunkBytes = 64 << 10;
constexpr std::size_t kTotalBytes = 96ULL << 20;
constexpr int kRepetitions = 3;  // best-of to shed scheduler noise
constexpr std::uint64_t kTsvEdges = 2000000;

/// Streams kTotalBytes of 64 KiB appends through `config`'s transport and
/// returns the best MiB/s over kRepetitions (Open through Close, so the
/// async drain is inside the clock).
double WriterThroughput(const tg::storage::IoConfig& config,
                        const std::string& path) {
  std::vector<char> chunk(kChunkBytes);
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = static_cast<char>('a' + i % 26);
  }
  double best_seconds = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    auto writer = tg::storage::MakeFileWriter(1 << 20, config);
    tg::Stopwatch watch;
    TG_CHECK(writer->Open(path).ok());
    for (std::size_t written = 0; written < kTotalBytes;
         written += kChunkBytes) {
      writer->Append(chunk.data(), chunk.size());
    }
    TG_CHECK(writer->Close().ok());
    const double seconds = watch.ElapsedSeconds();
    if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
  }
  return static_cast<double>(kTotalBytes) / best_seconds / (1 << 20);
}

/// The formatter this PR replaced: one divide per digit plus a reverse,
/// fed to the synchronous stdio writer. Kept here as the bench's
/// before/after reference.
int LegacyFormatU64(std::uint64_t value, char* buf) {
  char tmp[20];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  for (int i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

double LegacyTsvWriteSeconds(const std::string& path, std::uint64_t seed) {
  std::uint64_t state = seed;
  tg::Stopwatch watch;
  tg::storage::FileWriter writer;
  TG_CHECK(writer.Open(path).ok());
  for (std::uint64_t i = 0; i < kTsvEdges; ++i) {
    char line[44];
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    int n = LegacyFormatU64((state >> 8) % (std::uint64_t{1} << 48), line);
    line[n++] = '\t';
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    n += LegacyFormatU64((state >> 8) % (std::uint64_t{1} << 48), line + n);
    line[n++] = '\n';
    writer.Append(line, n);
  }
  TG_CHECK(writer.Close().ok());
  return watch.ElapsedSeconds();
}

double LegacyTsvParseSeconds(const std::string& path, std::uint64_t expect) {
  tg::Stopwatch watch;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  TG_CHECK(file != nullptr);
  std::uint64_t parsed = 0, src, dst;
  while (std::fscanf(file, "%" SCNu64 " %" SCNu64, &src, &dst) == 2) ++parsed;
  std::fclose(file);
  TG_CHECK(parsed == expect);
  return watch.ElapsedSeconds();
}

}  // namespace

int main() {
  tg::bench::ObsSession obs_session("bench_io_throughput");
  tg::bench::Banner(
      "I/O throughput: writer transports and the TSV fast path",
      "wall-clock substrate of Figures 11/14 (docs/PERFORMANCE.md, "
      "\"The I/O path\")",
      "TSV writer >= 1.5x the legacy per-digit path; async overlap wins "
      "need >= 2 cores; identical io.* counters on every transport");

  tg::storage::TempDir temp_dir("bench_io");
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("\ncores: %u%s\n", cores,
              cores < 2 ? "  (async transport cannot overlap: producer and "
                          "writer thread timeshare one CPU)"
                        : "");
  std::printf("io_uring: compiled %s, kernel %s\n",
              tg::storage::UringCompiledIn() ? "in" : "out",
              tg::storage::UringAvailable() ? "accepts it" : "lacks it");
  std::printf("streaming %s in %s appends, best of %d runs\n\n",
              tg::bench::HumanBytes(kTotalBytes).c_str(),
              tg::bench::HumanBytes(kChunkBytes).c_str(), kRepetitions);

  // The uring leg always runs: without a usable ring the writer thread falls
  // back to pwrite internally, and the io.* counters are unchanged either
  // way, so the baseline stays comparable across kernels.
  struct Mode {
    const char* label;
    tg::storage::IoConfig config;
  };
  const Mode modes[] = {
      {"sync", {tg::storage::IoMode::kSync, false}},
      {"async,nouring", {tg::storage::IoMode::kAsync, false}},
      {"async,uring", {tg::storage::IoMode::kAsync, true}},
  };
  double sync_mibps = 0.0;
  double best_async_mibps = 0.0;
  std::printf("%-15s %12s\n", "transport", "MiB/s");
  for (const Mode& mode : modes) {
    const double mibps =
        WriterThroughput(mode.config, temp_dir.File("stream.bin"));
    std::printf("%-15s %12.0f\n", mode.label, mibps);
    if (mode.config.mode == tg::storage::IoMode::kSync) {
      sync_mibps = mibps;
    } else if (mibps > best_async_mibps) {
      best_async_mibps = mibps;
    }
  }
  std::printf("\nasync/sync speedup: %.2fx\n", best_async_mibps / sync_mibps);

  // The TSV fast path: branchless two-digits-at-a-time formatting on the way
  // out, block parsing (no per-edge fscanf) on the way back in. Both write
  // legs are pinned to the sync transport so the delta isolates the
  // formatter; the transport table above is the async story.
  const std::string tsv_path = temp_dir.File("edges.tsv");
  std::uint64_t state = 42;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (state >> 8) % (std::uint64_t{1} << 48);
  };
  tg::storage::ScopedIoConfig sync_io({tg::storage::IoMode::kSync, false});
  tg::Stopwatch format_watch;
  {
    tg::format::TsvWriter writer(tsv_path);
    for (std::uint64_t i = 0; i < kTsvEdges; ++i) {
      const tg::VertexId src = next();
      writer.WriteEdge(src, next());
    }
    writer.Finish();
    TG_CHECK(writer.status().ok());
  }
  const double format_seconds = format_watch.ElapsedSeconds();

  tg::Stopwatch parse_watch;
  std::uint64_t parsed = 0;
  {
    tg::format::TsvReader reader(tsv_path);
    tg::Edge edge;
    while (reader.Next(&edge)) ++parsed;
    TG_CHECK(reader.status().ok());
  }
  const double parse_seconds = parse_watch.ElapsedSeconds();
  TG_CHECK(parsed == kTsvEdges);

  // Before/after: the per-digit formatter + per-edge fscanf this PR removed,
  // over the same edge stream.
  const double legacy_format_seconds =
      LegacyTsvWriteSeconds(temp_dir.File("legacy.tsv"), 42);
  const double legacy_parse_seconds =
      LegacyTsvParseSeconds(tsv_path, kTsvEdges);

  std::printf("\n%-28s %12s %12s\n", "TSV path (2M edges)", "Kedges/s",
              "speedup");
  std::printf("%-28s %12.0f\n", "write, legacy per-digit",
              kTsvEdges / legacy_format_seconds / 1e3);
  std::printf("%-28s %12.0f %11.2fx\n", "write, branchless pairs",
              kTsvEdges / format_seconds / 1e3,
              legacy_format_seconds / format_seconds);
  std::printf("%-28s %12.0f\n", "parse, legacy fscanf",
              kTsvEdges / legacy_parse_seconds / 1e3);
  std::printf("%-28s %12.0f %11.2fx\n", "parse, block reader",
              kTsvEdges / parse_seconds / 1e3,
              legacy_parse_seconds / parse_seconds);
  tg::bench::PrintLastOom();
  return 0;
}
