// Table 3: seed parameters and the degree distributions they generate.
//   Kout[a,b;c,d]  -> Zipfian out-degree, slope log2(c+d) - log2(a+b)
//   Kin[a,b;c,d]   -> Zipfian in-degree, slope log2(b+d) - log2(a+c)
//   K[0.25 x4]     -> Gaussian with mu = |E| / |V|
// The bench generates graphs for a sweep of seeds and fits the measured
// class slope / moments against the closed forms.
// Expected shape: measured slope within a few percent of theory for each
// row; the uniform seed yields Gaussian moments (mean |E|/|V|, stddev
// ~sqrt(mu)).

#include <cmath>
#include <cstdio>

#include "analysis/degree_dist.h"
#include "bench_util.h"
#include "core/trilliong.h"
#include "model/seed_matrix.h"

namespace {

constexpr int kScale = 17;

void MeasureSeed(const tg::model::SeedMatrix& seed, const char* label) {
  tg::core::TrillionGConfig config;
  config.scale = kScale;
  config.edge_factor = 16;
  config.seed = seed;
  tg::analysis::DegreeSink sink(config.NumVertices());
  tg::core::GenerateToSink(config, &sink);

  double out_slope = tg::analysis::PopcountClassSlope(sink.out_degrees());
  double in_slope = tg::analysis::PopcountClassSlope(sink.in_degrees());
  std::printf("%-34s %10.3f %10.3f %10.3f %10.3f\n", label,
              seed.TheoreticalOutSlope(), out_slope,
              seed.TheoreticalInSlope(), in_slope);
}

}  // namespace

int main() {
  tg::bench::Banner(
      "Table 3: seed parameters vs measured degree distributions (Scale 17)",
      "Park & Kim, SIGMOD'17, Table 3 / Lemma 6",
      "measured class slopes match log2(c+d)-log2(a+b) and "
      "log2(b+d)-log2(a+c)");

  std::printf("\n%-34s %10s %10s %10s %10s\n", "seed", "out theo",
              "out meas", "in theo", "in meas");

  MeasureSeed(tg::model::SeedMatrix::Graph500(),
              "Graph500 [.57,.19;.19,.05]");
  MeasureSeed(tg::model::SeedMatrix(0.45, 0.25, 0.2, 0.1),
              "[.45,.25;.20,.10]");
  MeasureSeed(tg::model::SeedMatrix(0.6, 0.2, 0.15, 0.05),
              "[.60,.20;.15,.05]");
  MeasureSeed(tg::model::SeedMatrix(0.5, 0.3, 0.15, 0.05),
              "[.50,.30;.15,.05] (asymmetric)");
  MeasureSeed(tg::model::SeedMatrix::FromZipfOutSlope(-1.0),
              "FromZipfOutSlope(-1.0)");
  MeasureSeed(tg::model::SeedMatrix::FromZipfOutSlope(-2.0),
              "FromZipfOutSlope(-2.0)");

  // Uniform seed: Gaussian degree distribution with mu = |E| / |V|.
  {
    tg::core::TrillionGConfig config;
    config.scale = kScale;
    config.edge_factor = 16;
    config.seed = tg::model::SeedMatrix::ErdosRenyi();
    tg::analysis::DegreeSink sink(config.NumVertices());
    tg::core::GenerateToSink(config, &sink);
    auto hist = tg::analysis::DegreeHistogram::FromDegrees(
        sink.in_degrees(), /*include_zero=*/true);
    std::printf(
        "\nK[0.25 x4] (Gaussian row): in-degree mean %.2f (theory %.2f), "
        "stddev %.2f (theory ~%.2f), max %llu (mu+6sigma %.1f)\n",
        hist.MeanDegree(), 16.0, hist.StddevDegree(), std::sqrt(16.0),
        static_cast<unsigned long long>(hist.MaxDegree()),
        16.0 + 6 * std::sqrt(16.0));
  }
  return 0;
}
