#ifndef TRILLIONG_BENCH_BENCH_UTIL_H_
#define TRILLIONG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>

#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/sampler.h"
#include "obs/serve/admin_server.h"
#include "obs/trace.h"
#include "prof/folded.h"
#include "prof/profiler.h"
#include "util/common.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace tg::bench {

/// Prints a figure/table banner so the bench output reads like the paper's
/// evaluation section.
inline void Banner(const std::string& title, const std::string& paper_ref,
                   const std::string& expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("expected shape: %s\n", expectation.c_str());
  std::printf("================================================================\n");
}

/// Runs `fn`, returning formatted elapsed seconds — or "O.O.M" if the run
/// exceeded its memory budget (exactly how the paper's figures annotate
/// methods that die; Figures 11 and 14). The caught OomError's forensics are
/// recorded via obs::RecordOom, so a later RunReport carries the mem.oom
/// section naming the failing machine/tag (PrintLastOom shows it inline).
inline std::string TimeOrOom(const std::function<void()>& fn) {
  Stopwatch watch;
  try {
    fn();
  } catch (const OomError& e) {
    obs::RecordOom(e.report());
    return "O.O.M";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", watch.ElapsedSeconds());
  return buf;
}

/// Prints the forensics of the most recent O.O.M (no-op when none): which
/// machine and tag tripped, plus the per-tag byte breakdown at death.
inline void PrintLastOom() {
  if (auto oom = obs::LastOom()) {
    std::printf("\nlast O.O.M forensics:\n%s", oom->ToString().c_str());
  }
}

/// Byte budget for the figure benches, overridable with a human-readable
/// TG_MEM_BUDGET ("48m", "2g", ...) so one env var re-runs a whole sweep at
/// a different simulated machine size.
inline std::uint64_t BudgetBytesFromEnv(std::uint64_t default_bytes) {
  const char* text = std::getenv("TG_MEM_BUDGET");
  if (text == nullptr || text[0] == '\0') return default_bytes;
  std::uint64_t bytes = 0;
  if (!ParseByteSize(text, &bytes)) {
    std::fprintf(stderr, "warning: TG_MEM_BUDGET: unparseable byte size \"%s\"\n",
                 text);
    return default_bytes;
  }
  return bytes;
}

/// Opt-in observability hook shared by every figure bench, driven by
/// environment variables so one setting covers a whole `ctest`/script sweep
/// (a `{name}` placeholder in any path is replaced with the bench name):
///
///   TG_METRICS_JSON=/tmp/{name}.json   write a RunReport on destruction
///   TG_TRACE_JSON=/tmp/{name}.trace.json  enable timeline tracing, write a
///                                      Chrome Trace Event file on exit
///   TG_SAMPLE_MS=50                    sample time series at this interval,
///                                      embedded in the RunReport
///                                      (TG_SAMPLE_INTERVAL_MS is honored
///                                      as an alias, TG_SAMPLE_MS winning)
///   TG_ADMIN_PORT=9900                 serve the live admin endpoints
///                                      (/metrics, /healthz, /report.json,
///                                      /events, /trace) for the duration
///                                      of the bench; 0 = ephemeral port,
///                                      printed at startup. Implies the
///                                      sampler so /events has ticks.
///   TG_PROFILE=/tmp/{name}.folded      sample the bench with the in-process
///                                      profiler (docs/OBSERVABILITY.md
///                                      "Profiling"), write folded stacks on
///                                      destruction and embed the prof
///                                      section in the RunReport.
///                                      TG_PROFILE_HZ overrides the 99 Hz
///                                      default rate.
///
///   TG_METRICS_JSON=/tmp/{name}.json ./bench_fig11b_distributed
///
/// Without any of the variables this is a no-op and the bench runs
/// uninstrumented. Missing parent directories are created; write failures
/// go to stderr (and never abort the bench).
class ObsSession {
 public:
  explicit ObsSession(const std::string& name) : name_(name) {
    path_ = PathFromEnv("TG_METRICS_JSON");
    trace_path_ = PathFromEnv("TG_TRACE_JSON");
    profile_path_ = PathFromEnv("TG_PROFILE");
    if (!profile_path_.empty()) {
      prof::ProfilerOptions prof_options;
      const char* hz = std::getenv("TG_PROFILE_HZ");
      if (hz != nullptr && hz[0] != '\0') prof_options.hz = std::atoi(hz);
      Status started = prof::StartProfiler(prof_options);
      if (!started.ok()) {
        std::fprintf(stderr, "cannot start profiler: %s\n",
                     started.ToString().c_str());
        profile_path_.clear();
      }
    }
    const char* sample_ms = std::getenv("TG_SAMPLE_MS");
    const bool have_sample_ms = sample_ms != nullptr && sample_ms[0] != '\0';
    const int interval_from_env = obs::SamplerIntervalFromEnv(-1);
    const int admin_port = obs::serve::AdminServer::PortFromEnv();
    const bool want_sampler =
        have_sample_ms || interval_from_env > 0 || admin_port >= 0;
    if (path_.empty() && trace_path_.empty() && !want_sampler) {
      return;
    }
    obs::SetEnabled(true);
    obs::PreregisterCanonicalMetrics();
    if (!trace_path_.empty()) obs::SetTraceEnabled(true);
    if (want_sampler) {
      obs::SamplerOptions options;
      if (interval_from_env > 0) options.interval_ms = interval_from_env;
      if (have_sample_ms) options.interval_ms = std::atoi(sample_ms);
      sampler_ = std::make_unique<obs::Sampler>(options);
      sampler_->Start();
    }
    if (admin_port >= 0) {
      obs::serve::AdminOptions admin_options;
      admin_options.port = admin_port;
      admin_options.meta["tool"] = name_;
      Status status = admin_.Start(admin_options);
      if (status.ok()) {
        std::printf("admin server on http://127.0.0.1:%d/ (TG_ADMIN_PORT)\n",
                    admin_.port());
      } else {
        std::fprintf(stderr, "cannot start admin server: %s\n",
                     status.ToString().c_str());
      }
    }
  }

  ~ObsSession() {
    if (sampler_ != nullptr) sampler_->Stop();
    admin_.Stop();
    prof::ProfileSnapshot prof_snapshot;
    if (!profile_path_.empty()) {
      prof::StopProfiler();
      prof_snapshot = prof::TakeSnapshot();
      Status status = prof::WriteFoldedFile(prof_snapshot, profile_path_);
      if (status.ok()) {
        std::printf("profile written to %s (%llu samples)\n",
                    profile_path_.c_str(),
                    static_cast<unsigned long long>(prof_snapshot.samples));
      } else {
        std::fprintf(stderr, "failed to write %s: %s\n", profile_path_.c_str(),
                     status.ToString().c_str());
      }
    }
    if (!trace_path_.empty()) {
      Status status = obs::WriteChromeTraceFile(trace_path_);
      if (status.ok()) {
        std::printf("trace written to %s\n", trace_path_.c_str());
      } else {
        std::fprintf(stderr, "failed to write %s: %s\n", trace_path_.c_str(),
                     status.ToString().c_str());
      }
    }
    if (path_.empty()) return;
    obs::RunReport report = obs::RunReport::Collect(obs::Registry::Global());
    report.meta["tool"] = name_;
    if (sampler_ != nullptr) sampler_->ExportTo(&report);
    if (!profile_path_.empty()) {
      report.meta["profile"] = profile_path_;
      prof::ExportTo(prof_snapshot, &report);
    }
    Status status = report.WriteJsonFile(path_);
    if (status.ok()) {
      std::printf("metrics report written to %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", path_.c_str(),
                   status.ToString().c_str());
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// True when a report will be written at exit.
  bool active() const { return !path_.empty(); }

 private:
  std::string PathFromEnv(const char* var) const {
    const char* pattern = std::getenv(var);
    if (pattern == nullptr || pattern[0] == '\0') return "";
    std::string path = pattern;
    const std::size_t placeholder = path.find("{name}");
    if (placeholder != std::string::npos) {
      path.replace(placeholder, 6, name_);
    }
    return path;
  }

  std::string name_;
  std::string path_;
  std::string trace_path_;
  std::string profile_path_;
  std::unique_ptr<obs::Sampler> sampler_;
  obs::serve::AdminServer admin_;
};

/// Human-readable byte count.
inline std::string HumanBytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", bytes / 1073741824.0);
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", bytes / 1048576.0);
  } else if (bytes >= (1ULL << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace tg::bench

#endif  // TRILLIONG_BENCH_BENCH_UTIL_H_
