#ifndef TRILLIONG_BENCH_BENCH_UTIL_H_
#define TRILLIONG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <string>

#include "util/common.h"
#include "util/stopwatch.h"

namespace tg::bench {

/// Prints a figure/table banner so the bench output reads like the paper's
/// evaluation section.
inline void Banner(const std::string& title, const std::string& paper_ref,
                   const std::string& expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("expected shape: %s\n", expectation.c_str());
  std::printf("================================================================\n");
}

/// Runs `fn`, returning formatted elapsed seconds — or "O.O.M" if the run
/// exceeded its memory budget (exactly how the paper's figures annotate
/// methods that die; Figures 11 and 14).
inline std::string TimeOrOom(const std::function<void()>& fn) {
  Stopwatch watch;
  try {
    fn();
  } catch (const OomError&) {
    return "O.O.M";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", watch.ElapsedSeconds());
  return buf;
}

/// Human-readable byte count.
inline std::string HumanBytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", bytes / 1073741824.0);
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", bytes / 1048576.0);
  } else if (bytes >= (1ULL << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace tg::bench

#endif  // TRILLIONG_BENCH_BENCH_UTIL_H_
