#ifndef TRILLIONG_BENCH_BENCH_UTIL_H_
#define TRILLIONG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "obs/metrics.h"
#include "obs/run_report.h"
#include "util/common.h"
#include "util/stopwatch.h"

namespace tg::bench {

/// Prints a figure/table banner so the bench output reads like the paper's
/// evaluation section.
inline void Banner(const std::string& title, const std::string& paper_ref,
                   const std::string& expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("expected shape: %s\n", expectation.c_str());
  std::printf("================================================================\n");
}

/// Runs `fn`, returning formatted elapsed seconds — or "O.O.M" if the run
/// exceeded its memory budget (exactly how the paper's figures annotate
/// methods that die; Figures 11 and 14).
inline std::string TimeOrOom(const std::function<void()>& fn) {
  Stopwatch watch;
  try {
    fn();
  } catch (const OomError&) {
    return "O.O.M";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", watch.ElapsedSeconds());
  return buf;
}

/// Opt-in observability hook shared by every figure bench. When the
/// `TG_METRICS_JSON` environment variable is set, enables tg::obs for the
/// lifetime of the session and writes a RunReport to that path on
/// destruction; any `{name}` placeholder in the path is replaced with the
/// bench name so one variable covers a whole `ctest`/script sweep:
///
///   TG_METRICS_JSON=/tmp/{name}.json ./bench_fig11b_distributed
///
/// Without the variable this is a no-op and the bench runs uninstrumented.
class ObsSession {
 public:
  explicit ObsSession(const std::string& name) : name_(name) {
    const char* pattern = std::getenv("TG_METRICS_JSON");
    if (pattern == nullptr || pattern[0] == '\0') return;
    path_ = pattern;
    const std::size_t placeholder = path_.find("{name}");
    if (placeholder != std::string::npos) {
      path_.replace(placeholder, 6, name_);
    }
    obs::SetEnabled(true);
    obs::PreregisterCanonicalMetrics();
  }

  ~ObsSession() {
    if (path_.empty()) return;
    obs::RunReport report = obs::RunReport::Collect(obs::Registry::Global());
    report.meta["tool"] = name_;
    Status status = report.WriteJsonFile(path_);
    if (status.ok()) {
      std::printf("metrics report written to %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", path_.c_str(),
                   status.ToString().c_str());
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// True when a report will be written at exit.
  bool active() const { return !path_.empty(); }

 private:
  std::string name_;
  std::string path_;
};

/// Human-readable byte count.
inline std::string HumanBytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", bytes / 1073741824.0);
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", bytes / 1048576.0);
  } else if (bytes >= (1ULL << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace tg::bench

#endif  // TRILLIONG_BENCH_BENCH_UTIL_H_
