// Figure 14 / Appendix D: TrillionG vs the Graph500 benchmark generator.
// (a) elapsed time across scales under 1 GbE and InfiniBand EDR network
// models; (b) the ratio of construction time (shuffle + merge + CSR
// conversion) to total time.
// Expected shape: TrillionG's elapsed time is identical under both networks
// (it never shuffles) and beats Graph500; Graph500's construction overhead
// ratio is large on 1 GbE and is the bulk of its cost, while TrillionG's
// construction overhead stays in the single-digit percents.

#include <cstdio>

#include "baseline/graph500.h"
#include "bench_util.h"
#include "cluster/sim_cluster.h"
#include "core/scheduler.h"
#include "core/trilliong.h"
#include "format/csr6.h"
#include "storage/temp_dir.h"
#include "util/stopwatch.h"

namespace {

constexpr int kMachines = 4;
constexpr int kMinScale = 15;
constexpr int kMaxScale = 19;

struct Row {
  std::string tg_1g, tg_ib, g500_1g, g500_ib;
  double tg_construct_ratio = 0;
  double g500_1g_ratio = 0;
  double g500_ib_ratio = 0;
};

}  // namespace

int main() {
  tg::bench::ObsSession obs_session("bench_fig14");
  tg::bench::Banner(
      "Figure 14: TrillionG (NSKG, CSR6) vs Graph500-style, 1 GbE vs "
      "InfiniBand",
      "Park & Kim, SIGMOD'17, Figure 14 / Appendix D",
      "(a) TrillionG-1G == TrillionG-IB and fastest; (b) Graph500-1G "
      "construction ratio >> TrillionG's ~6-7%");

  tg::storage::TempDir temp_dir("fig14");

  std::printf("\n(a) elapsed seconds (wall + simulated network)\n");
  std::printf("%-7s %14s %14s %14s %14s\n", "scale", "TrillionG-1G",
              "TrillionG-IB", "Graph500-1G", "Graph500-IB");

  std::vector<Row> rows;
  for (int scale = kMinScale; scale <= kMaxScale; ++scale) {
    Row row;

    // TrillionG: NSKG N=0.1, CSR6 shards, no shuffle -> identical on both
    // networks; run once, report twice (exactly the paper's observation).
    // Simulated cluster seconds = partition + max per-worker CPU; the
    // "construction" share is the CSR conversion cost, measured as the
    // delta against a counting-sink run.
    {
      tg::core::TrillionGConfig config;
      config.scale = scale;
      config.edge_factor = 16;
      config.noise = 0.1;
      config.num_workers = kMachines;
      config.chunks_per_worker = tg::core::ChunksPerWorkerFromEnv();

      tg::core::GenerateStats gen_only = tg::core::Generate(
          config,
          [&](int, tg::VertexId, tg::VertexId)
              -> std::unique_ptr<tg::core::ScopeSink> {
            return std::make_unique<tg::core::CountingSink>();
          });
      double tg_generate =
          gen_only.partition_seconds + gen_only.max_worker_cpu_seconds;

      tg::core::GenerateStats with_csr = tg::core::Generate(
          config,
          [&](int worker, tg::VertexId lo, tg::VertexId hi)
              -> std::unique_ptr<tg::core::ScopeSink> {
            return std::make_unique<tg::format::Csr6Writer>(
                temp_dir.File("tg_s" + std::to_string(scale) + "_w" +
                              std::to_string(worker) + ".csr6"),
                lo, hi);
          });
      double tg_total =
          with_csr.partition_seconds + with_csr.max_worker_cpu_seconds;
      double tg_construct = std::max(tg_total - tg_generate, 0.0);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", tg_total);
      row.tg_1g = row.tg_ib = buf;
      row.tg_construct_ratio = tg_construct / tg_total;
    }

    for (bool infiniband : {false, true}) {
      tg::cluster::SimCluster cluster(
          {kMachines, 1, 0,
           infiniband ? tg::cluster::NetworkModel::InfinibandEdr()
                      : tg::cluster::NetworkModel::OneGigabitEthernet()});
      tg::baseline::Graph500Options options;
      options.scale = scale;
      options.edge_factor = 16;
      tg::baseline::Graph500Stats stats =
          tg::baseline::RunGraph500(&cluster, options);
      double total = stats.generation_seconds + stats.construction_seconds;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", total);
      (infiniband ? row.g500_ib : row.g500_1g) = buf;
      double ratio = stats.construction_seconds / total;
      (infiniband ? row.g500_ib_ratio : row.g500_1g_ratio) = ratio;
    }

    std::printf("%-7d %14s %14s %14s %14s\n", scale, row.tg_1g.c_str(),
                row.tg_ib.c_str(), row.g500_1g.c_str(), row.g500_ib.c_str());
    std::fflush(stdout);
    rows.push_back(row);
  }

  std::printf("\n(b) construction overhead ratio (%% of total time)\n");
  std::printf("%-7s %14s %14s %14s\n", "scale", "TrillionG", "Graph500-1G",
              "Graph500-IB");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-7d %13.1f%% %13.1f%% %13.1f%%\n",
                kMinScale + static_cast<int>(i),
                100 * rows[i].tg_construct_ratio,
                100 * rows[i].g500_1g_ratio, 100 * rows[i].g500_ib_ratio);
  }
  std::printf(
      "\nverdict: TrillionG's ratio stays low and network-independent; "
      "Graph500's 1 GbE ratio is by far the largest (paper: >90%% at scale "
      "29 with the fast C kernel; our kernel is slower so the ratio is "
      "smaller but the ordering holds).\n");
  return 0;
}
