// Figure 11(a): performance of single-threaded methods — RMAT-mem,
// RMAT-disk, FastKronecker, TrillionG/seq — across graph scales, under a
// fixed per-process memory budget (the stand-in for the paper's 32 GB
// machines; scaled down with the scales, see DESIGN.md).
// Expected shape: TrillionG/seq is fastest at every scale by a wide margin;
// RMAT-mem and FastKronecker hit O.O.M at the largest scales because their
// dedup set is O(|E|); RMAT-disk survives but is far slower than TrillionG.

#include <cstdio>
#include <vector>

#include "baseline/kronecker.h"
#include "baseline/rmat.h"
#include "bench_util.h"
#include "core/scope_sink.h"
#include "core/trilliong.h"
#include "format/adj6.h"
#include "storage/temp_dir.h"
#include "util/stopwatch.h"

namespace {

// Paper: scales 20-28 with 32 GB. Here: scales 14-19 with a 96 MiB budget,
// which puts the O(|E|) methods' O.O.M crossover inside the sweep exactly
// like the paper's Figure 11(a).
constexpr int kMinScale = 14;
constexpr int kMaxScale = 19;
constexpr std::uint64_t kDefaultBudgetBytes = 96ULL << 20;

}  // namespace

int main() {
  tg::bench::ObsSession obs_session("bench_fig11a");
  const std::uint64_t kBudgetBytes =
      tg::bench::BudgetBytesFromEnv(kDefaultBudgetBytes);
  tg::bench::Banner(
      "Figure 11(a): single-threaded methods, scales 14-19, 96 MiB budget",
      "Park & Kim, SIGMOD'17, Figure 11(a)",
      "TrillionG/seq fastest everywhere; RMAT-mem/FastKronecker O.O.M at "
      "the top scales; RMAT-disk slowest but survives");

  tg::storage::TempDir temp_dir("fig11a");

  std::printf("\n%-8s %14s %14s %14s %16s %16s\n", "scale", "RMAT-mem",
              "RMAT-disk", "FastKronecker", "TrillionG/seq", "TG gen-only");
  for (int scale = kMinScale; scale <= kMaxScale; ++scale) {
    const std::uint64_t num_edges = 16ULL << scale;
    std::printf("%-8d", scale);

    {
      tg::MemoryBudget budget(kBudgetBytes);
      tg::baseline::RmatOptions options;
      options.scale = scale;
      options.budget = &budget;
      std::printf(" %14s", tg::bench::TimeOrOom([&] {
                    tg::baseline::RmatMem(options, [](const tg::Edge&) {});
                  }).c_str());
      std::fflush(stdout);
    }
    {
      tg::MemoryBudget budget(kBudgetBytes);
      tg::baseline::RmatDiskOptions options;
      options.scale = scale;
      options.budget = &budget;
      options.temp_dir = temp_dir.path();
      options.sort_buffer_items = 1 << 20;
      std::printf(" %14s", tg::bench::TimeOrOom([&] {
                    tg::baseline::RmatDisk(options, [](const tg::Edge&) {});
                  }).c_str());
      std::fflush(stdout);
    }
    {
      tg::MemoryBudget budget(kBudgetBytes);
      tg::baseline::FastKroneckerOptions options;
      options.num_vertices = tg::VertexId{1} << scale;
      options.num_edges = num_edges;
      options.budget = &budget;
      std::printf(" %14s", tg::bench::TimeOrOom([&] {
                    tg::baseline::FastKronecker(options,
                                                [](const tg::Edge&) {});
                  }).c_str());
      std::fflush(stdout);
    }
    {
      tg::MemoryBudget budget(kBudgetBytes);
      tg::core::TrillionGConfig config;
      config.scale = scale;
      config.edge_factor = 16;
      config.num_workers = 1;
      config.budget = &budget;
      std::printf(" %16s", tg::bench::TimeOrOom([&] {
                    // Like the paper, TrillionG writes the real output file
                    // (ADJ6) and still wins.
                    tg::format::Adj6Writer sink(temp_dir.File(
                        "tg_scale" + std::to_string(scale) + ".adj6"));
                    tg::core::GenerateToSink(config, &sink);
                    sink.Finish();
                  }).c_str());
    }
    {
      // Pure generation cost (no output formatting): the table-kernel
      // headline number, reported as edges/second so before/after runs are
      // directly comparable (docs/PERFORMANCE.md records the history).
      tg::MemoryBudget budget(kBudgetBytes);
      tg::core::TrillionGConfig config;
      config.scale = scale;
      config.edge_factor = 16;
      config.num_workers = 1;
      config.budget = &budget;
      tg::core::CountingSink sink;
      tg::Stopwatch watch;
      tg::core::GenerateStats stats = tg::core::GenerateToSink(config, &sink);
      const double secs = watch.ElapsedSeconds();
      std::printf(" %13.1f M/s",
                  static_cast<double>(stats.num_edges) / secs / 1e6);
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf(
      "\nNote: RMAT baselines discard edges (pure generation+dedup cost); "
      "TrillionG additionally wrote ADJ6 output.\n");
  tg::bench::PrintLastOom();
  return 0;
}
