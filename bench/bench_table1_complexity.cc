// Table 1: empirical validation of the time and space complexities of the
// scope-based generation approaches:
//   WES (RMAT-mem)        O(|E| log|V|) time, O(|E|) space
//   AES (Kronecker)       O(|V|^2) time, O(1) space
//   FastKronecker         O(|E| log|V|) time, O(|E|) space
//   WES/p (RMAT/p)        O(|E| log|V| / P) + shuffle/merge, O(|E|/P) space
//   AVS (TrillionG)       O(|E| log|V| / P) time, O(d_max) space
// The bench sweeps scales, measures time and tracked peak memory for each
// approach, and prints per-scale growth factors: time should grow ~2x per
// scale for the |E|-bound methods and ~4x for AES; space should grow ~2x for
// WES-family, stay flat for AES, and grow sublinearly (~1.5x) for AVS.

#include <cstdio>

#include "baseline/kronecker.h"
#include "baseline/rmat.h"
#include "baseline/wesp.h"
#include "bench_util.h"
#include "cluster/sim_cluster.h"
#include "core/trilliong.h"
#include "util/stopwatch.h"

namespace {

struct Measurement {
  double seconds = 0;
  std::uint64_t peak_bytes = 0;
};

void PrintSweep(const char* name, const std::vector<int>& scales,
                const std::vector<Measurement>& results) {
  std::printf("\n%s\n", name);
  std::printf("  %-7s %12s %10s %16s %10s\n", "scale", "seconds", "t-ratio",
              "peak bytes", "m-ratio");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("  %-7d %12.3f %10s %16llu %10s\n", scales[i],
                results[i].seconds,
                i == 0 ? "-"
                       : [&] {
                           static char buf[16];
                           std::snprintf(buf, sizeof(buf), "%.2fx",
                                         results[i].seconds /
                                             results[i - 1].seconds);
                           return buf;
                         }(),
                static_cast<unsigned long long>(results[i].peak_bytes),
                i == 0 ? "-"
                       : [&] {
                           static char buf[16];
                           std::snprintf(
                               buf, sizeof(buf), "%.2fx",
                               static_cast<double>(results[i].peak_bytes) /
                                   std::max<std::uint64_t>(
                                       results[i - 1].peak_bytes, 1));
                           return buf;
                         }());
  }
}

}  // namespace

int main() {
  tg::bench::Banner(
      "Table 1: empirical time/space complexity of the scope-based "
      "approaches",
      "Park & Kim, SIGMOD'17, Table 1",
      "WES time&space ~2x/scale; AES time ~4x/scale, space flat; AVS time "
      "~2x/scale, space sublinear");

  // WES (RMAT-mem).
  {
    std::vector<int> scales = {14, 15, 16, 17};
    std::vector<Measurement> results;
    for (int scale : scales) {
      tg::MemoryBudget budget(0);
      tg::baseline::RmatOptions options;
      options.scale = scale;
      options.budget = &budget;
      tg::Stopwatch watch;
      tg::baseline::WesStats stats =
          tg::baseline::RmatMem(options, [](const tg::Edge&) {});
      results.push_back({watch.ElapsedSeconds(), stats.peak_bytes});
    }
    PrintSweep("WES (RMAT-mem): O(|E| log|V|) time, O(|E|) space", scales,
               results);
  }

  // AES (original Kronecker) — |V|^2 cells, so small scales only.
  {
    std::vector<int> scales = {10, 11, 12, 13};
    std::vector<Measurement> results;
    for (int scale : scales) {
      tg::baseline::KroneckerAesOptions options;
      options.scale = scale;
      tg::Stopwatch watch;
      tg::baseline::KroneckerAes(options, [](const tg::Edge&) {});
      // AES holds nothing but loop state: O(1).
      results.push_back({watch.ElapsedSeconds(), sizeof(options)});
    }
    PrintSweep("AES (Kronecker): O(|V|^2) time, O(1) space", scales, results);
  }

  // FastKronecker.
  {
    std::vector<int> scales = {14, 15, 16, 17};
    std::vector<Measurement> results;
    for (int scale : scales) {
      tg::MemoryBudget budget(0);
      tg::baseline::FastKroneckerOptions options;
      options.num_vertices = tg::VertexId{1} << scale;
      options.num_edges = 16ULL << scale;
      options.budget = &budget;
      tg::Stopwatch watch;
      tg::baseline::WesStats stats =
          tg::baseline::FastKronecker(options, [](const tg::Edge&) {});
      results.push_back({watch.ElapsedSeconds(), stats.peak_bytes});
    }
    PrintSweep("FastKronecker: O(|E| log|V|) time, O(|E|) space", scales,
               results);
  }

  // WES/p (RMAT/p-mem) on the simulated cluster.
  {
    std::vector<int> scales = {14, 15, 16, 17};
    std::vector<Measurement> results;
    for (int scale : scales) {
      tg::cluster::SimCluster cluster({4, 1, 0, {}});
      tg::baseline::WespOptions options;
      options.scale = scale;
      tg::baseline::WespStats stats = tg::baseline::RunWesp(&cluster, options);
      results.push_back({stats.generate_seconds + stats.shuffle_seconds +
                             stats.merge_seconds,
                         stats.peak_machine_bytes});
    }
    PrintSweep(
        "WES/p (RMAT/p-mem, P=4): O(|E| log|V| / P) + shuffle, O(|E|/P) "
        "space/machine",
        scales, results);
  }

  // AVS (TrillionG).
  {
    std::vector<int> scales = {14, 15, 16, 17, 18, 19};
    std::vector<Measurement> results;
    for (int scale : scales) {
      tg::core::TrillionGConfig config;
      config.scale = scale;
      config.edge_factor = 16;
      config.num_workers = 1;
      tg::core::CountingSink sink;
      tg::Stopwatch watch;
      tg::core::GenerateStats stats =
          tg::core::GenerateToSink(config, &sink);
      results.push_back({watch.ElapsedSeconds(), stats.peak_scope_bytes});
    }
    PrintSweep("AVS (TrillionG): O(|E| log|V| / P) time, O(d_max) space",
               scales, results);
  }

  std::printf(
      "\nverdict: the t-ratio column should read ~2x for WES / "
      "FastKronecker / WES/p / AVS and ~4x for AES; the m-ratio column "
      "~2x for the WES family, flat for AES, and ~1.4-1.7x for AVS.\n");
  return 0;
}
