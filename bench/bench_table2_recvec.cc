// Table 2: complexities of the naive CDF-vector method (linear / binary
// search) vs the recursive vector model (RecVec). Reports per-edge
// determination time and the memory of each data structure across scales.
// Expected shape: CDF-linear is O(|V|) per edge and hopeless; CDF-binary
// matches RecVec in time but needs O(|V|) memory per scope; RecVec needs
// O(log|V|) memory (a few hundred bytes even at trillion scale).

#include <benchmark/benchmark.h>

#include "core/cdf_vector.h"
#include "core/edge_determiner.h"
#include "core/rec_vec.h"
#include "model/noise.h"
#include "model/seed_matrix.h"
#include "rng/random.h"

namespace {

using tg::core::CdfVector;
using tg::core::RecVec;
using tg::model::NoiseVector;
using tg::model::SeedMatrix;

constexpr tg::VertexId kSourceVertex = 0x155;  // arbitrary mid-density row

void BM_CdfLinear(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  NoiseVector noise(SeedMatrix::Graph500(), scale);
  CdfVector cdf(noise, kSourceVertex & ((tg::VertexId{1} << scale) - 1));
  tg::rng::Rng rng(42);
  for (auto _ : state) {
    double x = rng.NextDouble(cdf.Total());
    benchmark::DoNotOptimize(cdf.InvertLinear(x));
  }
  state.counters["struct_bytes"] = static_cast<double>(cdf.MemoryBytes());
}

void BM_CdfBinary(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  NoiseVector noise(SeedMatrix::Graph500(), scale);
  CdfVector cdf(noise, kSourceVertex & ((tg::VertexId{1} << scale) - 1));
  tg::rng::Rng rng(42);
  for (auto _ : state) {
    double x = rng.NextDouble(cdf.Total());
    benchmark::DoNotOptimize(cdf.InvertBinary(x));
  }
  state.counters["struct_bytes"] = static_cast<double>(cdf.MemoryBytes());
}

void BM_RecVec(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  NoiseVector noise(SeedMatrix::Graph500(), scale);
  RecVec<double> rv(noise, kSourceVertex & ((tg::VertexId{1} << scale) - 1));
  tg::rng::Rng rng(42);
  for (auto _ : state) {
    double x = tg::core::NextUniformReal<double>(&rng, rv.Total());
    benchmark::DoNotOptimize(tg::core::DetermineEdge(rv, x));
  }
  state.counters["struct_bytes"] = static_cast<double>(rv.MemoryBytes());
}

void BM_RecVecDoubleDouble(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  NoiseVector noise(SeedMatrix::Graph500(), scale);
  RecVec<tg::numeric::DoubleDouble> rv(
      noise, kSourceVertex & ((tg::VertexId{1} << scale) - 1));
  tg::rng::Rng rng(42);
  for (auto _ : state) {
    tg::numeric::DoubleDouble x =
        tg::core::NextUniformReal<tg::numeric::DoubleDouble>(&rng, rv.Total());
    benchmark::DoNotOptimize(tg::core::DetermineEdge(rv, x));
  }
  state.counters["struct_bytes"] = static_cast<double>(rv.MemoryBytes());
}

void BM_RecVecConstruction(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  NoiseVector noise(SeedMatrix::Graph500(), scale);
  RecVec<double> rv;
  tg::VertexId u = 0;
  for (auto _ : state) {
    rv.Build(noise, (u++) & ((tg::VertexId{1} << scale) - 1));
    benchmark::DoNotOptimize(rv);
  }
}

// CDF-vector scales are capped at 2^24 (128 MiB per scope — the point).
BENCHMARK(BM_CdfLinear)->Arg(12)->Arg(16)->Arg(20);
BENCHMARK(BM_CdfBinary)->Arg(12)->Arg(16)->Arg(20)->Arg(24);
BENCHMARK(BM_RecVec)->Arg(12)->Arg(16)->Arg(20)->Arg(24)->Arg(30)->Arg(36);
BENCHMARK(BM_RecVecDoubleDouble)->Arg(20)->Arg(36);
BENCHMARK(BM_RecVecConstruction)->Arg(20)->Arg(36);

}  // namespace

BENCHMARK_MAIN();
