// Ablation: AVS-level mass-balanced partitioning (Figure 6) vs the naive
// equal-vertex-count split. The paper's claim (Section 5) is that
// partitioning the vertex range by *expected edge mass* avoids the workload
// skew that plagues shuffle-based methods; this bench quantifies the skew a
// naive split would have produced.
// Expected shape: with equal vertex counts, worker 0 (which owns the
// power-law head) does several times the average work; with CDF
// partitioning all workers are within a few percent of each other.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cluster/sim_cluster.h"
#include "core/avs_generator.h"
#include "core/partitioner.h"
#include "core/trilliong.h"
#include "model/noise.h"

namespace {

constexpr int kScale = 19;
constexpr int kWorkers = 4;

struct Imbalance {
  double max_seconds;
  double mean_seconds;
  std::vector<std::uint64_t> edges;
};

Imbalance RunWithBoundaries(const tg::model::NoiseVector& noise,
                            const std::vector<tg::VertexId>& boundaries) {
  tg::cluster::SimCluster cluster({kWorkers, 1, 0, {}});
  std::vector<double> busy(kWorkers, 0);
  std::vector<std::uint64_t> edges(kWorkers, 0);
  tg::core::AvsRangeGenerator<double> generator(
      &noise, 16ULL << kScale, tg::core::DeterminerOptions{});
  const tg::rng::Rng root(42, 1);
  cluster.RunParallel([&](int w) {
    double start = tg::ThreadCpuSeconds();
    tg::core::CountingSink sink;
    tg::core::AvsWorkerStats stats = generator.GenerateRange(
        boundaries[w], boundaries[w + 1], root, &sink);
    edges[w] = stats.num_edges;
    busy[w] = tg::ThreadCpuSeconds() - start;
  });
  Imbalance result;
  result.max_seconds = *std::max_element(busy.begin(), busy.end());
  double total = 0;
  for (double b : busy) total += b;
  result.mean_seconds = total / kWorkers;
  result.edges = edges;
  return result;
}

void Report(const char* name, const Imbalance& r) {
  std::printf("%-22s max %.3f s, mean %.3f s, imbalance %.2fx, edges:", name,
              r.max_seconds, r.mean_seconds, r.max_seconds / r.mean_seconds);
  for (std::uint64_t e : r.edges) {
    std::printf(" %llu", static_cast<unsigned long long>(e));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  tg::bench::Banner(
      "Ablation: AVS mass partitioning (Figure 6) vs equal-vertex split, "
      "Scale 19, 4 workers",
      "Park & Kim, SIGMOD'17, Section 5 / Figure 6",
      "CDF partitioning: imbalance ~1.0x; equal-vertex split: worker 0 "
      "does ~2-3x the average work");

  tg::model::NoiseVector noise(tg::model::SeedMatrix::Graph500(), kScale);

  // Naive: equal vertex counts.
  const tg::VertexId n = tg::VertexId{1} << kScale;
  std::vector<tg::VertexId> equal_split = {0, n / 4, n / 2, 3 * n / 4, n};
  Report("equal-vertex split", RunWithBoundaries(noise, equal_split));

  // Figure 6: equal expected edge mass.
  std::vector<tg::VertexId> by_mass =
      tg::core::PartitionByCdf(noise, kWorkers);
  Report("CDF mass partition", RunWithBoundaries(noise, by_mass));

  std::printf(
      "\nverdict: the equal-vertex imbalance is what RMAT/p suffers after "
      "its shuffle (Section 3.2); TrillionG's partitioner removes it before "
      "any edge is generated.\n");
  return 0;
}
