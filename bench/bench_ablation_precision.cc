// Ablation: RecVec arithmetic precision — double vs DoubleDouble (the
// paper's BigDecimal stand-in; Section 5 argues double "might not be
// accurate enough ... for trillion-scale graphs").
// Expected shape: DoubleDouble costs a constant factor (~2-4x) in generation
// throughput while producing a statistically identical graph at these
// scales; at trillion scale the extra mantissa bits are what keep the
// Theorem 2 translation exact (see the RecVec tests for the agreement
// bound).

#include <cstdio>

#include "analysis/degree_dist.h"
#include "bench_util.h"
#include "core/trilliong.h"
#include "util/stopwatch.h"

int main() {
  tg::bench::Banner(
      "Ablation: RecVec precision — double vs DoubleDouble (Scale 19)",
      "Park & Kim, SIGMOD'17, Section 5 (BigDecimal for RecVec)",
      "DoubleDouble ~2-4x slower, identical degree distribution");

  tg::core::TrillionGConfig config;
  config.scale = 19;
  config.edge_factor = 16;
  config.num_workers = 1;

  tg::analysis::DegreeHistogram hist_double, hist_dd;
  std::printf("\n%-14s %10s %14s %12s\n", "precision", "seconds",
              "Medges/sec", "edges");
  double seconds_double = 0, seconds_dd = 0;
  for (bool dd : {false, true}) {
    config.precision = dd ? tg::core::Precision::kDoubleDouble
                          : tg::core::Precision::kDouble;
    tg::analysis::DegreeSink sink(config.NumVertices());
    tg::Stopwatch watch;
    tg::core::GenerateStats stats = tg::core::GenerateToSink(config, &sink);
    double seconds = watch.ElapsedSeconds();
    (dd ? seconds_dd : seconds_double) = seconds;
    (dd ? hist_dd : hist_double) = sink.OutHistogram();
    std::printf("%-14s %10.3f %14.2f %12llu\n",
                dd ? "DoubleDouble" : "double", seconds,
                stats.num_edges / seconds / 1e6,
                static_cast<unsigned long long>(stats.num_edges));
    std::fflush(stdout);
  }

  std::printf(
      "\nslowdown: %.2fx; out-degree distribution KS distance: %.4f "
      "(same stochastic process, same RNG stream)\n",
      seconds_dd / seconds_double,
      tg::analysis::DegreeHistogram::KsDistance(hist_double, hist_dd));
  return 0;
}
