# Bench harness targets. Included from the top-level CMakeLists with
# include(), so executables land directly in ${CMAKE_BINARY_DIR}/bench with
# no other build artifacts beside them: `for b in build/bench/*; do $b; done`
# runs the full suite.
set(TG_BENCH_DIR ${CMAKE_BINARY_DIR}/bench)

function(tg_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE trilliong benchmark::benchmark)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY
                                           ${TG_BENCH_DIR})
endfunction()

tg_add_bench(bench_table1_complexity)
tg_add_bench(bench_table2_recvec)
tg_add_bench(bench_table3_distributions)
tg_add_bench(bench_fig8_degree_dist)
tg_add_bench(bench_fig9_nskg_noise)
tg_add_bench(bench_fig10_erv)
tg_add_bench(bench_fig11a_single_thread)
tg_add_bench(bench_fig11b_distributed)
tg_add_bench(bench_fig12_scalability)
tg_add_bench(bench_fig13_ideas)
tg_add_bench(bench_fig14_graph500)
tg_add_bench(bench_io_throughput)
tg_add_bench(bench_serve)
tg_add_bench(bench_ablation_partition)
tg_add_bench(bench_ablation_precision)
