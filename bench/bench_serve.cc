// Serving-path benchmark for the tg::serve daemon (docs/SERVING.md): an
// in-process daemon, N concurrent HTTP clients, cold (generate + stream)
// vs cached (whole-graph LRU hit) latency at 1/4/16 clients, p50/p99 and
// streamed edges/sec per phase.
//
// Every request in a phase has a distinct seed, so the cold phase is all
// cache misses and the warm phase (same requests replayed) is all hits —
// serve.requests / serve.cache_hits / serve.cache_misses /
// serve.bytes_streamed in the RunReport are exact, machine-independent
// counts gated by bench/baselines/BENCH_serve.json (time-derived
// histograms are skipped by the CI gate: bench_check --no_histograms).

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/daemon.h"
#include "serve/minihttp_client.h"
#include "util/common.h"
#include "util/stopwatch.h"

namespace {

constexpr int kScale = 13;
constexpr int kEdgeFactor = 8;
constexpr int kWorkersPerRequest = 2;
constexpr std::uint64_t kEdgesPerRequest = std::uint64_t{kEdgeFactor}
                                           << kScale;

std::string RequestJson(int client, std::uint64_t seed) {
  return "{\"tenant\": \"bench" + std::to_string(client) +
         "\", \"scale\": " + std::to_string(kScale) +
         ", \"edge_factor\": " + std::to_string(kEdgeFactor) +
         ", \"workers\": " + std::to_string(kWorkersPerRequest) +
         ", \"format\": \"adj6\", \"seed\": " + std::to_string(seed) + "}";
}

struct PhaseResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double seconds = 0.0;
  std::uint64_t bytes = 0;
};

/// Runs `clients` concurrent POSTs (seeds seed_base..seed_base+clients-1)
/// and returns the latency distribution. TG_CHECKs every response: a
/// failed or truncated stream would silently skew the numbers.
PhaseResult RunPhase(int port, int clients, std::uint64_t seed_base,
                     const char* expect_cache) {
  std::vector<double> latencies_ms(static_cast<std::size_t>(clients));
  std::vector<std::uint64_t> bytes(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  tg::Stopwatch phase_watch;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      tg::Stopwatch watch;
      tg::serve::ClientResponse response = tg::serve::HttpPost(
          "127.0.0.1", port, "/generate",
          RequestJson(c, seed_base + static_cast<std::uint64_t>(c)));
      latencies_ms[c] = watch.ElapsedSeconds() * 1e3;
      TG_CHECK_MSG(response.status == 200,
                   "request failed: " << response.status << " "
                                      << response.error);
      TG_CHECK_MSG(!response.truncated, "stream truncated");
      TG_CHECK_MSG(response.headers["x-tg-cache"] == expect_cache,
                   "expected cache " << expect_cache << ", got "
                                     << response.headers["x-tg-cache"]);
      bytes[c] = response.body.size();
    });
  }
  for (auto& t : threads) t.join();

  PhaseResult result;
  result.seconds = phase_watch.ElapsedSeconds();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = latencies_ms[latencies_ms.size() / 2];
  result.p99_ms = latencies_ms[latencies_ms.size() * 99 / 100];
  for (std::uint64_t b : bytes) result.bytes += b;
  return result;
}

}  // namespace

int main() {
  tg::bench::ObsSession obs_session("bench_serve");
  tg::bench::Banner(
      "tg::serve: daemon latency under concurrent tenants, cold vs cached",
      "generation-as-a-service atop the deterministic scheduler "
      "(docs/SERVING.md)",
      "cached p50 well under cold p50; cache counters exact: every unique "
      "request misses once, every replay hits");

  tg::serve::DaemonOptions options;
  options.max_concurrent = 4;
  options.max_queued = 64;
  options.per_tenant_inflight = 4;
  options.worker_threads = std::max(
      2, static_cast<int>(std::thread::hardware_concurrency()));
  options.cache_bytes = 256ULL << 20;
  tg::serve::ServeDaemon daemon;
  tg::Status started = daemon.Start(options);
  TG_CHECK_MSG(started.ok(), started.ToString());

  std::printf("\nscale %d, edge_factor %d, %d workers/request, adj6; "
              "%llu edges per request\n",
              kScale, kEdgeFactor, kWorkersPerRequest,
              static_cast<unsigned long long>(kEdgesPerRequest));
  std::printf("%8s %-8s %10s %10s %14s\n", "clients", "phase", "p50 ms",
              "p99 ms", "Medges/s");

  std::uint64_t seed_base = 1000;
  for (int clients : {1, 4, 16}) {
    // Cold: all distinct seeds, never seen before -> misses, full
    // generate + stream per request.
    const PhaseResult cold = RunPhase(daemon.port(), clients, seed_base,
                                      "miss");
    // Warm: identical requests replayed -> whole-graph LRU hits.
    const PhaseResult warm = RunPhase(daemon.port(), clients, seed_base,
                                      "hit");
    seed_base += static_cast<std::uint64_t>(clients);

    const double cold_meps = static_cast<double>(kEdgesPerRequest) *
                             clients / cold.seconds / 1e6;
    const double warm_meps = static_cast<double>(kEdgesPerRequest) *
                             clients / warm.seconds / 1e6;
    std::printf("%8d %-8s %10.1f %10.1f %14.1f\n", clients, "cold",
                cold.p50_ms, cold.p99_ms, cold_meps);
    std::printf("%8d %-8s %10.1f %10.1f %14.1f   (%.1fx cold p50)\n",
                clients, "cached", warm.p50_ms, warm.p99_ms, warm_meps,
                cold.p50_ms / std::max(warm.p50_ms, 1e-6));
  }

  daemon.Drain();
  tg::bench::PrintLastOom();
  return 0;
}
